// Package rsu implements the road-side unit runtime of Section II-D: per
// measurement period it maintains a bitmap sized by Eq. (2), broadcasts
// signed beacons at preset intervals, folds incoming vehicle reports into
// the bitmap, and at period end emits the traffic record for upload to the
// central server. The RSU never stores any per-vehicle information.
//
// Concurrency contract: the report path is lock-free. The active period
// lives behind an atomic.Pointer (RCU-style): handleReport loads the
// pointer and ORs one bit into the bitmap atomically, never blocking on
// other reports or on period rotation. StartPeriod/EndPeriod are the
// writers — they serialize among themselves on a rotation mutex and swap
// the pointer; EndPeriod additionally waits for in-flight reports to
// drain, so the record it returns is quiescent and safe for plain reads
// (marshaling, estimation) without further synchronization.
package rsu

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/lpc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Errors.
var (
	ErrNoPeriod     = errors.New("rsu: no measurement period active")
	ErrPeriodActive = errors.New("rsu: a measurement period is already active")
	ErrNilDep       = errors.New("rsu: nil credential or channel")
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// periodState is the RCU-published state of one measurement period. It is
// immutable except for the bitmap contents and the counters, all of which
// are written atomically.
type periodState struct {
	rec *record.Record
	// seen counts reports folded into rec.
	seen atomic.Uint64
	// inflight counts handleReport calls currently writing into rec;
	// EndPeriod waits for it to reach zero after unpublishing the state,
	// which is the RCU grace period that makes rec quiescent.
	inflight atomic.Int64
}

// RSU is one road-side unit. Beacon, Stats, and the report sink are safe
// for unbounded concurrent use; StartPeriod/EndPeriod/StartPeriodAuto may
// also be called concurrently (they serialize on an internal rotation
// lock), though deployments typically drive rotation from one scheduler.
type RSU struct {
	cred  *pki.Credential
	ch    *dsrc.Channel
	f     float64
	clock Clock

	// rotateMu serializes period rotation (StartPeriod/EndPeriod). The
	// report path never takes it.
	rotateMu sync.Mutex

	// cur is the RCU-published active period; nil between periods. Only
	// the rotation writer (holding rotateMu) may store or swap it, and
	// lock-free readers must re-Load rather than retain a pointer across
	// blocking — both machine-checked by the rcu lint rule.
	//ptm:rcu rotateMu
	cur      atomic.Pointer[periodState]
	dropped  atomic.Uint64 // reports received with no/mismatched active period
	lastSeen atomic.Uint64 // reports in the most recently completed period
}

// New wires an RSU to its radio channel. f is the system-wide load factor
// of Eq. (2); clock may be nil for time.Now. The RSU registers itself as
// the channel's report sink.
func New(cred *pki.Credential, ch *dsrc.Channel, f float64, clock Clock) (*RSU, error) {
	if cred == nil || ch == nil {
		return nil, ErrNilDep
	}
	if f <= 0 {
		return nil, fmt.Errorf("rsu: load factor must be positive, got %v", f)
	}
	if clock == nil {
		clock = time.Now
	}
	r := &RSU{cred: cred, ch: ch, f: f, clock: clock}
	if err := ch.AttachSink(r.handleReport); err != nil {
		return nil, fmt.Errorf("rsu: attaching to channel: %w", err)
	}
	return r, nil
}

// Location returns the RSU's location.
func (r *RSU) Location() vhash.LocationID { return r.cred.Location }

// StartPeriod begins measurement period p with a fresh bitmap sized by
// Eq. (2) from the expected traffic volume (historical average at this
// location and time).
func (r *RSU) StartPeriod(p record.PeriodID, expectedVolume float64) error {
	m, err := lpc.BitmapSize(expectedVolume, r.f)
	if err != nil {
		return fmt.Errorf("rsu: sizing period %d: %w", p, err)
	}
	rec, err := record.New(r.cred.Location, p, m)
	if err != nil {
		return err
	}
	r.rotateMu.Lock()
	defer r.rotateMu.Unlock()
	if cur := r.cur.Load(); cur != nil {
		return fmt.Errorf("%w: period %d", ErrPeriodActive, cur.rec.Period)
	}
	r.cur.Store(&periodState{rec: rec})
	return nil
}

// Beacon broadcasts one signed beacon for the active period. Deployments
// call this on a ticker ("once per second"); simulations call it once per
// simulated vehicle wave. Beacon never blocks report ingest.
func (r *RSU) Beacon() error {
	cur := r.cur.Load()
	if cur == nil {
		return ErrNoPeriod
	}
	sig, err := r.cred.SignBeacon(r.cred.Location, cur.rec.Size(), uint32(cur.rec.Period))
	if err != nil {
		return err
	}
	return r.ch.Broadcast(dsrc.Beacon{
		Location: r.cred.Location,
		M:        cur.rec.Size(),
		Period:   cur.rec.Period,
		CertDER:  r.cred.CertificateDER(),
		Sig:      sig,
	})
}

// handleReport folds one vehicle report into the active bitmap without
// taking any lock. Reports for other periods (stale or clock-skewed
// vehicles) are dropped, as are reports that lose the race with period
// rotation — indistinguishable, to the vehicle, from arriving a moment
// later.
func (r *RSU) handleReport(rep dsrc.Report) {
	st := r.cur.Load()
	if st == nil {
		r.dropped.Add(1)
		return
	}
	st.inflight.Add(1)
	// Re-check after announcing ourselves: if rotation swapped the
	// pointer between our load and the increment, EndPeriod may already
	// have observed inflight == 0 and handed the record off, so we must
	// not touch it. (If the re-check still sees st, the swap — and hence
	// EndPeriod's drain — happens after our increment, and the drain
	// waits for us.)
	if r.cur.Load() != st || rep.Period != st.rec.Period {
		st.inflight.Add(-1)
		r.dropped.Add(1)
		return
	}
	st.rec.Bitmap.AtomicSet(rep.Index)
	st.seen.Add(1)
	st.inflight.Add(-1)
}

// EndPeriod closes the active period and returns its traffic record. It
// unpublishes the period state, then waits for in-flight reports to
// drain, so the returned record is immutable from the caller's point of
// view.
func (r *RSU) EndPeriod() (*record.Record, error) {
	r.rotateMu.Lock()
	defer r.rotateMu.Unlock()
	st := r.cur.Swap(nil)
	if st == nil {
		return nil, ErrNoPeriod
	}
	// RCU grace period: every handler that incremented inflight before
	// the swap finishes; handlers arriving after the swap drop without
	// writing.
	for st.inflight.Load() != 0 {
		runtime.Gosched()
	}
	r.lastSeen.Store(st.seen.Load())
	return st.rec, nil
}

// ErrNoHistory is returned by StartPeriodAuto before any period has
// completed.
var ErrNoHistory = errors.New("rsu: no completed period to derive an expected volume from")

// StartPeriodAuto begins period p sized from the previous period's
// observed report count — the "historical average at the same location"
// of Eq. (2) for RSUs without an external history feed. Each vehicle
// reports at most once per period (duplicates are suppressed vehicle-side
// and lost reports are simply uncounted), so the report count is itself
// the previous period's volume measurement.
func (r *RSU) StartPeriodAuto(p record.PeriodID) error {
	last := r.lastSeen.Load()
	if last == 0 {
		return ErrNoHistory
	}
	return r.StartPeriod(p, float64(last))
}

// Stats is an observability snapshot.
type Stats struct {
	Active       bool
	Period       record.PeriodID
	BitmapSize   int
	ReportsSeen  uint64
	ReportsDrop  uint64
	OnesFraction float64
}

// Stats returns current counters. It is safe to call while reports are
// being folded concurrently; OnesFraction is then a live snapshot.
func (r *RSU) Stats() Stats {
	s := Stats{ReportsDrop: r.dropped.Load()}
	if st := r.cur.Load(); st != nil {
		s.Active = true
		s.Period = st.rec.Period
		s.BitmapSize = st.rec.Size()
		s.ReportsSeen = st.seen.Load()
		s.OnesFraction = st.rec.Bitmap.AtomicFractionOne()
	} else {
		s.ReportsSeen = r.lastSeen.Load()
	}
	return s
}
