// Package rsu implements the road-side unit runtime of Section II-D: per
// measurement period it maintains a bitmap sized by Eq. (2), broadcasts
// signed beacons at preset intervals, folds incoming vehicle reports into
// the bitmap, and at period end emits the traffic record for upload to the
// central server. The RSU never stores any per-vehicle information.
package rsu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/lpc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Errors.
var (
	ErrNoPeriod     = errors.New("rsu: no measurement period active")
	ErrPeriodActive = errors.New("rsu: a measurement period is already active")
	ErrNilDep       = errors.New("rsu: nil credential or channel")
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// RSU is one road-side unit.
type RSU struct {
	cred  *pki.Credential
	ch    *dsrc.Channel
	f     float64
	clock Clock

	mu       sync.Mutex
	cur      *record.Record
	dropped  uint64 // reports received with no/mismatched active period
	seen     uint64 // reports folded into the current record
	lastSeen uint64 // reports in the most recently completed period
}

// New wires an RSU to its radio channel. f is the system-wide load factor
// of Eq. (2); clock may be nil for time.Now. The RSU registers itself as
// the channel's report sink.
func New(cred *pki.Credential, ch *dsrc.Channel, f float64, clock Clock) (*RSU, error) {
	if cred == nil || ch == nil {
		return nil, ErrNilDep
	}
	if f <= 0 {
		return nil, fmt.Errorf("rsu: load factor must be positive, got %v", f)
	}
	if clock == nil {
		clock = time.Now
	}
	r := &RSU{cred: cred, ch: ch, f: f, clock: clock}
	if err := ch.AttachSink(r.handleReport); err != nil {
		return nil, fmt.Errorf("rsu: attaching to channel: %w", err)
	}
	return r, nil
}

// Location returns the RSU's location.
func (r *RSU) Location() vhash.LocationID { return r.cred.Location }

// StartPeriod begins measurement period p with a fresh bitmap sized by
// Eq. (2) from the expected traffic volume (historical average at this
// location and time).
func (r *RSU) StartPeriod(p record.PeriodID, expectedVolume float64) error {
	m, err := lpc.BitmapSize(expectedVolume, r.f)
	if err != nil {
		return fmt.Errorf("rsu: sizing period %d: %w", p, err)
	}
	rec, err := record.New(r.cred.Location, p, m)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		return fmt.Errorf("%w: period %d", ErrPeriodActive, r.cur.Period)
	}
	r.cur = rec
	r.seen = 0
	return nil
}

// Beacon broadcasts one signed beacon for the active period. Deployments
// call this on a ticker ("once per second"); simulations call it once per
// simulated vehicle wave.
func (r *RSU) Beacon() error {
	r.mu.Lock()
	cur := r.cur
	r.mu.Unlock()
	if cur == nil {
		return ErrNoPeriod
	}
	sig, err := r.cred.SignBeacon(r.cred.Location, cur.Size(), uint32(cur.Period))
	if err != nil {
		return err
	}
	return r.ch.Broadcast(dsrc.Beacon{
		Location: r.cred.Location,
		M:        cur.Size(),
		Period:   cur.Period,
		CertDER:  r.cred.CertificateDER(),
		Sig:      sig,
	})
}

// handleReport folds one vehicle report into the active bitmap. Reports
// for other periods (stale or clock-skewed vehicles) are dropped.
func (r *RSU) handleReport(rep dsrc.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil || rep.Period != r.cur.Period {
		r.dropped++
		return
	}
	r.cur.Bitmap.Set(rep.Index)
	r.seen++
}

// EndPeriod closes the active period and returns its traffic record.
func (r *RSU) EndPeriod() (*record.Record, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return nil, ErrNoPeriod
	}
	rec := r.cur
	r.cur = nil
	r.lastSeen = r.seen
	return rec, nil
}

// ErrNoHistory is returned by StartPeriodAuto before any period has
// completed.
var ErrNoHistory = errors.New("rsu: no completed period to derive an expected volume from")

// StartPeriodAuto begins period p sized from the previous period's
// observed report count — the "historical average at the same location"
// of Eq. (2) for RSUs without an external history feed. Each vehicle
// reports at most once per period (duplicates are suppressed vehicle-side
// and lost reports are simply uncounted), so the report count is itself
// the previous period's volume measurement.
func (r *RSU) StartPeriodAuto(p record.PeriodID) error {
	r.mu.Lock()
	last := r.lastSeen
	r.mu.Unlock()
	if last == 0 {
		return ErrNoHistory
	}
	return r.StartPeriod(p, float64(last))
}

// Stats is an observability snapshot.
type Stats struct {
	Active       bool
	Period       record.PeriodID
	BitmapSize   int
	ReportsSeen  uint64
	ReportsDrop  uint64
	OnesFraction float64
}

// Stats returns current counters.
func (r *RSU) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{ReportsSeen: r.seen, ReportsDrop: r.dropped}
	if r.cur != nil {
		s.Active = true
		s.Period = r.cur.Period
		s.BitmapSize = r.cur.Size()
		s.OnesFraction = r.cur.Bitmap.FractionOne()
	}
	return s
}
