package transport

import (
	"net"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
)

func benchStack(b *testing.B) (*central.Server, *Client) {
	b.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	b.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return store, client
}

// BenchmarkUploadThroughput measures end-to-end record uploads over TCP
// loopback (Table I-scale records: 2^16 bits = 8 KiB payloads).
func BenchmarkUploadThroughput(b *testing.B) {
	_, client := benchStack(b)
	rec, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Period = record.PeriodID(i + 1) // duplicates are rejected
		if err := client.Upload(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryThroughput measures persistent-traffic queries over TCP
// loopback against a populated store.
func BenchmarkQueryThroughput(b *testing.B) {
	store, client := benchStack(b)
	for p := record.PeriodID(1); p <= 5; p++ {
		rec, err := record.New(7, p, 1<<14)
		if err != nil {
			b.Fatal(err)
		}
		for i := uint64(0); i < 5000; i++ {
			rec.Bitmap.Set(i*0x9e3779b97f4a7c15 + uint64(p))
		}
		if err := store.Ingest(rec); err != nil {
			b.Fatal(err)
		}
	}
	periods := []record.PeriodID{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.QueryPointPersistent(7, periods); err != nil {
			b.Fatal(err)
		}
	}
}
