package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
)

func benchStack(b *testing.B) (*central.Server, *Client) {
	b.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	b.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return store, client
}

// BenchmarkUploadThroughput measures end-to-end record uploads over TCP
// loopback (Table I-scale records: 2^16 bits = 8 KiB payloads).
func BenchmarkUploadThroughput(b *testing.B) {
	_, client := benchStack(b)
	rec, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Period = record.PeriodID(i + 1) // duplicates are rejected
		if err := client.Upload(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecords pre-builds n distinct small records (2^10 bits — a
// low-volume period at Eq. 2's minimum sizes). Small payloads keep the
// per-round-trip overhead dominant, which is exactly what the batched
// and pipelined paths amortize; estimator-scale payload throughput is
// covered by BenchmarkUploadThroughput.
func benchRecords(b *testing.B, n int) []*record.Record {
	b.Helper()
	recs := make([]*record.Record, n)
	for i := range recs {
		rec, err := record.New(1, record.PeriodID(i+1), 1<<10)
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = rec
	}
	return recs
}

// uploadBatchSize is the batch granularity for the batched/pipelined
// upload benchmarks: an RSU draining a backlog of one record per period
// over a day of 5-minute periods.
const uploadBatchSize = 64

// BenchmarkUploadSingle is the round-trip-per-record baseline: each
// record costs one synchronous exchange on the wire.
func BenchmarkUploadSingle(b *testing.B) {
	store, client := benchStack(b)
	recs := benchRecords(b, uploadBatchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range recs {
			if err := client.Upload(rec); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := store.DropBefore(^record.PeriodID(0)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkUploadBatched sends the same records as one UploadBatch frame:
// one round trip amortized over the whole backlog.
func BenchmarkUploadBatched(b *testing.B) {
	store, client := benchStack(b)
	recs := benchRecords(b, uploadBatchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.UploadBatch(recs); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := store.DropBefore(^record.PeriodID(0)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkUploadPipelined issues the same records as concurrent single
// uploads over one connection: pipelining overlaps the round trips even
// without batching.
func BenchmarkUploadPipelined(b *testing.B) {
	store, client := benchStack(b)
	recs := benchRecords(b, uploadBatchSize)
	const workers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(recs); j += workers {
					if err := client.Upload(recs[j]); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		if _, err := store.DropBefore(^record.PeriodID(0)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkQueryThroughput measures persistent-traffic queries over TCP
// loopback against a populated store.
func BenchmarkQueryThroughput(b *testing.B) {
	store, client := benchStack(b)
	for p := record.PeriodID(1); p <= 5; p++ {
		rec, err := record.New(7, p, 1<<14)
		if err != nil {
			b.Fatal(err)
		}
		for i := uint64(0); i < 5000; i++ {
			rec.Bitmap.Set(i*0x9e3779b97f4a7c15 + uint64(p))
		}
		if err := store.Ingest(rec); err != nil {
			b.Fatal(err)
		}
	}
	periods := []record.PeriodID{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.QueryPointPersistent(7, periods); err != nil {
			b.Fatal(err)
		}
	}
}
