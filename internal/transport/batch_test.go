package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

func makeBatch(t testing.TB, n int) []*record.Record {
	t.Helper()
	recs := make([]*record.Record, n)
	for i := range recs {
		rec, err := record.New(42, record.PeriodID(i+1), 256)
		if err != nil {
			t.Fatal(err)
		}
		rec.Bitmap.Set(uint64(i))
		recs[i] = rec
	}
	return recs
}

func TestBatchCodecRoundTrip(t *testing.T) {
	recs := makeBatch(t, 7)
	payload, err := encodeUploadBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeUploadBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want, err := recs[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		have, err := got[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, have) {
			t.Errorf("record %d does not round-trip", i)
		}
	}
}

func TestBatchCodecErrors(t *testing.T) {
	if _, err := encodeUploadBatch(nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty batch err = %v", err)
	}
	if _, err := encodeUploadBatch(make([]*record.Record, MaxBatchRecords+1)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize batch err = %v", err)
	}

	recs := makeBatch(t, 3)
	payload, err := encodeUploadBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix must be rejected, never panic.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeUploadBatch(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage after a valid batch.
	if _, err := decodeUploadBatch(append(append([]byte{}, payload...), 0xff)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes err = %v", err)
	}
	// A count that promises more records than the payload can hold must be
	// rejected before allocation.
	hostile := []byte{0xff, 0xff, 0x00, 0x00}
	if _, err := decodeUploadBatch(hostile); !errors.Is(err, ErrBadFrame) {
		t.Errorf("hostile count err = %v", err)
	}
}

func TestBatchResultCodec(t *testing.T) {
	for _, r := range []batchResult{
		{ok: true, accepted: 12},
		{ok: false, accepted: 3, errMsg: "record 3/5: duplicate"},
	} {
		got, err := decodeBatchResult(r.encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("batch result round trip: %+v vs %+v", got, r)
		}
	}
	if _, err := decodeBatchResult([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short batch result err = %v", err)
	}
}

func TestUploadBatchOverTCP(t *testing.T) {
	store, client := newTestStack(t)
	recs := makeBatch(t, 10)
	accepted, err := client.UploadBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(recs) {
		t.Errorf("accepted = %d, want %d", accepted, len(recs))
	}
	if got := store.Periods(42); len(got) != len(recs) {
		t.Errorf("store holds %d periods, want %d", len(got), len(recs))
	}
}

// TestUploadBatchPartialFailure: one duplicate inside a batch must not
// discard the rest, and the connection stays usable afterwards.
func TestUploadBatchPartialFailure(t *testing.T) {
	store, client := newTestStack(t)
	recs := makeBatch(t, 5)
	if err := client.Upload(recs[2]); err != nil {
		t.Fatal(err)
	}
	accepted, err := client.UploadBatch(recs)
	if !IsRemote(err) {
		t.Fatalf("partial batch err = %v, want RemoteError", err)
	}
	if !strings.Contains(err.Error(), "record 2/5") {
		t.Errorf("err text = %v", err)
	}
	if accepted != 4 {
		t.Errorf("accepted = %d, want 4", accepted)
	}
	if got := store.Periods(42); len(got) != 5 {
		t.Errorf("store holds %d periods, want 5", len(got))
	}
	// Still usable.
	if _, err := client.QueryVolume(42, 1); err != nil {
		t.Errorf("connection unusable after partial batch: %v", err)
	}
}

// TestPipelinedUploads: many goroutines share one client; pipelining must
// match every response to its caller (no cross-talk) and land every
// record.
func TestPipelinedUploads(t *testing.T) {
	const (
		workers = 8
		perW    = 25
	)
	store, client := newTestStack(t)
	var wg sync.WaitGroup
	// Interleave uploads and queries from many goroutines over the one
	// shared connection.
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				rec, err := record.New(vhash.LocationID(100+g), record.PeriodID(i+1), 64)
				if err != nil {
					t.Error(err)
					return
				}
				rec.Bitmap.Set(uint64(g*perW + i))
				if err := client.Upload(rec); err != nil {
					t.Errorf("worker %d upload %d: %v", g, i, err)
					return
				}
				if _, err := client.ListPeriods(vhash.LocationID(100 + g)); err != nil {
					t.Errorf("worker %d list %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < workers; g++ {
		if got := store.Periods(vhash.LocationID(100 + g)); len(got) != perW {
			t.Errorf("location %d holds %d periods, want %d", 100+g, len(got), perW)
		}
	}
}

// TestClientCloseReleasesWaiters: Close must fail in-flight and
// subsequent calls with ErrClientClosed instead of hanging.
func TestClientCloseReleasesWaiters(t *testing.T) {
	_, client := newTestStack(t)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := record.New(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	err = client.Upload(rec)
	if err == nil {
		t.Fatal("upload on closed client succeeded")
	}
	if IsRemote(err) {
		t.Errorf("closed-client err misclassified as remote: %v", err)
	}
}

func TestUploadBatchEmptyRejectedClientSide(t *testing.T) {
	_, client := newTestStack(t)
	if _, err := client.UploadBatch(nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty batch err = %v", err)
	}
}
