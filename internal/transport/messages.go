package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// VolumeQuery asks for the Eq. (1) volume estimate of one record.
type VolumeQuery struct {
	Loc    vhash.LocationID
	Period record.PeriodID
}

func (q VolumeQuery) encode() []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(q.Loc))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(q.Period))
	return buf
}

func decodeVolumeQuery(b []byte) (VolumeQuery, error) {
	if len(b) != 12 {
		return VolumeQuery{}, fmt.Errorf("%w: volume query length %d", ErrBadFrame, len(b))
	}
	return VolumeQuery{
		Loc:    vhash.LocationID(binary.LittleEndian.Uint64(b[0:8])),
		Period: record.PeriodID(binary.LittleEndian.Uint32(b[8:12])),
	}, nil
}

// PointQuery asks for the Eq. (12) point persistent estimate.
type PointQuery struct {
	Loc     vhash.LocationID
	Periods []record.PeriodID
}

func encodePeriods(buf []byte, ps []record.PeriodID) []byte {
	var lenBuf [2]byte
	binary.LittleEndian.PutUint16(lenBuf[:], uint16(len(ps)))
	buf = append(buf, lenBuf[:]...)
	for _, p := range ps {
		var pb [4]byte
		binary.LittleEndian.PutUint32(pb[:], uint32(p))
		buf = append(buf, pb[:]...)
	}
	return buf
}

func decodePeriods(b []byte) ([]record.PeriodID, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("%w: truncated period list", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	b = b[2:]
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("%w: period list claims %d entries", ErrBadFrame, n)
	}
	out := make([]record.PeriodID, n)
	for i := range out {
		out[i] = record.PeriodID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, b[4*n:], nil
}

// MaxQueryPeriods bounds the period list in a single query.
const MaxQueryPeriods = 1 << 12

func (q PointQuery) encode() ([]byte, error) {
	if len(q.Periods) > MaxQueryPeriods {
		return nil, fmt.Errorf("%w: %d periods", ErrBadFrame, len(q.Periods))
	}
	buf := make([]byte, 8, 8+2+4*len(q.Periods))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(q.Loc))
	return encodePeriods(buf, q.Periods), nil
}

func decodePointQuery(b []byte) (PointQuery, error) {
	if len(b) < 8 {
		return PointQuery{}, fmt.Errorf("%w: point query length %d", ErrBadFrame, len(b))
	}
	loc := vhash.LocationID(binary.LittleEndian.Uint64(b[0:8]))
	ps, rest, err := decodePeriods(b[8:])
	if err != nil {
		return PointQuery{}, err
	}
	if len(rest) != 0 {
		return PointQuery{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return PointQuery{Loc: loc, Periods: ps}, nil
}

// P2PQuery asks for the Eq. (21) point-to-point persistent estimate.
type P2PQuery struct {
	LocA, LocB vhash.LocationID
	Periods    []record.PeriodID
}

func (q P2PQuery) encode() ([]byte, error) {
	if len(q.Periods) > MaxQueryPeriods {
		return nil, fmt.Errorf("%w: %d periods", ErrBadFrame, len(q.Periods))
	}
	buf := make([]byte, 16, 16+2+4*len(q.Periods))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(q.LocA))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(q.LocB))
	return encodePeriods(buf, q.Periods), nil
}

func decodeP2PQuery(b []byte) (P2PQuery, error) {
	if len(b) < 16 {
		return P2PQuery{}, fmt.Errorf("%w: p2p query length %d", ErrBadFrame, len(b))
	}
	locA := vhash.LocationID(binary.LittleEndian.Uint64(b[0:8]))
	locB := vhash.LocationID(binary.LittleEndian.Uint64(b[8:16]))
	ps, rest, err := decodePeriods(b[16:])
	if err != nil {
		return P2PQuery{}, err
	}
	if len(rest) != 0 {
		return P2PQuery{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return P2PQuery{LocA: locA, LocB: locB, Periods: ps}, nil
}

// Listing payloads: a status byte (1 = ok), then on success a uint32
// count followed by fixed-width entries; on failure an error string.

func encodeLocationList(locs []vhash.LocationID) []byte {
	buf := make([]byte, 5+8*len(locs))
	buf[0] = 1
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(locs)))
	for i, l := range locs {
		binary.LittleEndian.PutUint64(buf[5+8*i:], uint64(l))
	}
	return buf
}

func decodeLocationList(b []byte) ([]vhash.LocationID, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty list payload", ErrBadFrame)
	}
	if b[0] != 1 {
		return nil, &RemoteError{Msg: string(b[1:])}
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: short location list", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) != 5+8*n {
		return nil, fmt.Errorf("%w: location list claims %d entries", ErrBadFrame, n)
	}
	out := make([]vhash.LocationID, n)
	for i := range out {
		out[i] = vhash.LocationID(binary.LittleEndian.Uint64(b[5+8*i:]))
	}
	return out, nil
}

func encodePeriodList(ps []record.PeriodID) []byte {
	buf := make([]byte, 5+4*len(ps))
	buf[0] = 1
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(ps)))
	for i, p := range ps {
		binary.LittleEndian.PutUint32(buf[5+4*i:], uint32(p))
	}
	return buf
}

func decodePeriodList(b []byte) ([]record.PeriodID, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty list payload", ErrBadFrame)
	}
	if b[0] != 1 {
		return nil, &RemoteError{Msg: string(b[1:])}
	}
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: short period list", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) != 5+4*n {
		return nil, fmt.Errorf("%w: period list claims %d entries", ErrBadFrame, n)
	}
	out := make([]record.PeriodID, n)
	for i := range out {
		out[i] = record.PeriodID(binary.LittleEndian.Uint32(b[5+4*i:]))
	}
	return out, nil
}

// MaxBatchRecords bounds the record count in one UploadBatch frame. The
// frame size cap (MaxFrameSize) already bounds the payload; this bounds
// the per-record bookkeeping a hostile count could demand.
const MaxBatchRecords = 1 << 16

// encodeUploadBatch frames the records: uint32 count, then per record a
// uint32 length and the record.MarshalBinary blob.
//
//ptm:sink transport upload
func encodeUploadBatch(recs []*record.Record) ([]byte, error) {
	if len(recs) == 0 || len(recs) > MaxBatchRecords {
		return nil, fmt.Errorf("%w: batch of %d records", ErrBadFrame, len(recs))
	}
	buf := make([]byte, 4, 4+len(recs)*512)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(recs)))
	for _, rec := range recs {
		blob, err := rec.MarshalBinary()
		if err != nil {
			return nil, err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		buf = append(buf, lenBuf[:]...)
		buf = append(buf, blob...)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrFrameTooLarge, len(buf))
	}
	return buf, nil
}

// decodeUploadBatch parses an UploadBatch payload. The count is validated
// against the remaining bytes before any allocation so a hostile frame
// cannot demand more memory than it paid for on the wire.
func decodeUploadBatch(b []byte) ([]*record.Record, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: batch header %d bytes", ErrBadFrame, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	if n == 0 || n > MaxBatchRecords {
		return nil, fmt.Errorf("%w: batch claims %d records", ErrBadFrame, n)
	}
	if len(b) < 4*n {
		return nil, fmt.Errorf("%w: batch of %d records in %d bytes", ErrBadFrame, n, len(b))
	}
	recs := make([]*record.Record, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: truncated before record %d", ErrBadFrame, i)
		}
		blen := int(binary.LittleEndian.Uint32(b[0:4]))
		b = b[4:]
		if blen > len(b) {
			return nil, fmt.Errorf("%w: record %d claims %d bytes, %d remain", ErrBadFrame, i, blen, len(b))
		}
		rec, err := record.Unmarshal(b[:blen])
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFrame, i, err)
		}
		recs = append(recs, rec)
		b = b[blen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(b))
	}
	return recs, nil
}

// EncodeRecordBatch frames records in the UploadBatch wire format —
// exported for protocol extensions (cluster replication and record
// fetch) that carry record batches in their own frame types.
//
//ptm:sink transport upload
func EncodeRecordBatch(recs []*record.Record) ([]byte, error) {
	return encodeUploadBatch(recs)
}

// EncodeRecordBlobs frames already-marshaled records in the UploadBatch
// wire format. The cluster shipper holds WAL entries (which are exactly
// record.MarshalBinary blobs) and must not pay a decode/re-encode round
// trip per shipped record.
//
//ptm:sink transport upload
func EncodeRecordBlobs(blobs [][]byte) ([]byte, error) {
	if len(blobs) == 0 || len(blobs) > MaxBatchRecords {
		return nil, fmt.Errorf("%w: batch of %d records", ErrBadFrame, len(blobs))
	}
	total := 4
	for _, blob := range blobs {
		total += 4 + len(blob)
	}
	if total > MaxFrameSize {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrFrameTooLarge, total)
	}
	buf := make([]byte, 4, total)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(blobs)))
	for _, blob := range blobs {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		buf = append(buf, lenBuf[:]...)
		buf = append(buf, blob...)
	}
	return buf, nil
}

// DecodeRecordBatch parses a record batch framed by EncodeRecordBatch or
// EncodeRecordBlobs, validating every record.
func DecodeRecordBatch(payload []byte) ([]*record.Record, error) {
	return decodeUploadBatch(payload)
}

// batchResult is the server's answer to an UploadBatch: how many records
// were accepted and, when ok is false, the first per-record failure.
type batchResult struct {
	ok       bool
	accepted uint32
	errMsg   string
}

func (r batchResult) encode() []byte {
	buf := make([]byte, 5+len(r.errMsg))
	if r.ok {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:5], r.accepted)
	copy(buf[5:], r.errMsg)
	return buf
}

func decodeBatchResult(b []byte) (batchResult, error) {
	if len(b) < 5 {
		return batchResult{}, fmt.Errorf("%w: batch result length %d", ErrBadFrame, len(b))
	}
	return batchResult{
		ok:       b[0] == 1,
		accepted: binary.LittleEndian.Uint32(b[1:5]),
		errMsg:   string(b[5:]),
	}, nil
}

// result is the server's answer to any query or upload: a status byte, an
// estimate (queries only), and an error string for application failures.
type result struct {
	ok       bool
	estimate float64
	errMsg   string
}

func (r result) encode() []byte {
	buf := make([]byte, 9+len(r.errMsg))
	if r.ok {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint64(buf[1:9], math.Float64bits(r.estimate))
	copy(buf[9:], r.errMsg)
	return buf
}

func decodeResult(b []byte) (result, error) {
	if len(b) < 9 {
		return result{}, fmt.Errorf("%w: result length %d", ErrBadFrame, len(b))
	}
	return result{
		ok:       b[0] == 1,
		estimate: math.Float64frombits(binary.LittleEndian.Uint64(b[1:9])),
		errMsg:   string(b[9:]),
	}, nil
}
