package transport

// Tests for the Redial recovery path (DESIGN.md §15): a transport
// failure poisons the connection's session, and Redial replaces the
// session so the same Client object recovers — the cluster router keeps
// one Client per node across node restarts and failovers.

import (
	"errors"
	"net"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// redialRecord builds a small valid record for upload tests.
func redialRecord(loc, period, bit int) *record.Record {
	rec, err := record.New(vhash.LocationID(loc), record.PeriodID(period), 64)
	if err != nil {
		panic(err)
	}
	rec.Bitmap.Set(uint64(bit))
	return rec
}

// startServer serves a fresh central store on addr ("" for any port) and
// returns the server and its bound address.
func startServer(t *testing.T, addr string) (*Server, string) {
	t.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String()
}

func TestRedialBrokenThenRecovered(t *testing.T) {
	srv, addr := startServer(t, "")
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Upload(redialRecord(1, 1, 3)); err != nil {
		t.Fatalf("upload before failure: %v", err)
	}

	// Kill the server: the next call fails with a transport error, and
	// the failure is sticky — every later call on the old session fails
	// fast without touching the network.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	err = client.Upload(redialRecord(1, 2, 3))
	if err == nil {
		t.Fatal("upload to a dead server succeeded")
	}
	if IsRemote(err) {
		t.Fatalf("dead server produced a RemoteError: %v", err)
	}
	if err2 := client.Upload(redialRecord(1, 3, 3)); err2 == nil {
		t.Fatal("poisoned client accepted another upload")
	}

	// Server comes back on the same address (restart / failover target).
	srv2, _ := startServer(t, addr)
	defer srv2.Close()

	// Redial swaps the session; the same Client recovers fully.
	if err := client.Redial(); err != nil {
		t.Fatalf("redial: %v", err)
	}
	if err := client.Upload(redialRecord(1, 2, 3)); err != nil {
		t.Fatalf("upload after redial: %v", err)
	}
	locs, err := client.ListLocations()
	if err != nil {
		t.Fatalf("list after redial: %v", err)
	}
	if len(locs) != 1 {
		t.Fatalf("locations after redial = %v, want the one uploaded", locs)
	}
}

func TestRedialFailsKeepsClientUsable(t *testing.T) {
	srv, addr := startServer(t, "")
	defer srv.Close()
	client, err := Dial(addr, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Redialing a healthy client is allowed (reconnect); a failed redial
	// (to nowhere) leaves the previous session in place.
	if err := client.Redial(); err != nil {
		t.Fatalf("redial healthy: %v", err)
	}
	if err := client.Upload(redialRecord(2, 1, 5)); err != nil {
		t.Fatalf("upload after healthy redial: %v", err)
	}
}

func TestRedialNotRedialable(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	client := NewClient(c1)
	defer client.Close()
	if err := client.Redial(); !errors.Is(err, ErrNotRedialable) {
		t.Fatalf("redial on wrapped conn = %v, want ErrNotRedialable", err)
	}
}

func TestRedialAfterClose(t *testing.T) {
	srv, addr := startServer(t, "")
	defer srv.Close()
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Redial(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("redial after close = %v, want ErrClientClosed", err)
	}
}

// TestRedialReleasesInflightCalls pins the liveness property: calls in
// flight on the replaced session fail promptly (with the sticky error),
// they do not hang waiting for a response that will never arrive.
func TestRedialReleasesInflightCalls(t *testing.T) {
	// A listener that accepts and then reads nothing: calls stay in
	// flight forever until the session is torn down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()

	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := client.ListLocations()
		errc <- err
	}()
	// Wait for the call to be on the wire (the black-hole server has
	// accepted and the frame is written), then redial.
	conn := <-accepted
	defer conn.Close()
	buf := make([]byte, frameHeaderLen)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := client.Redial(); err != nil {
		t.Fatalf("redial: %v", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight call on replaced session returned success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung across Redial")
	}
}
