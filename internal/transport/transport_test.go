package transport

import (
	"bytes"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/synth"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, MsgUpload, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgUpload || string(got) != string(payload) {
		t.Errorf("round trip: %v %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgUploadAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgUploadAck || len(got) != 0 {
		t.Errorf("empty frame: %v %v", typ, got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, MsgUpload, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write err = %v", err)
	}
	// A corrupted stream claiming a giant length must be rejected before
	// allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgUpload)})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read err = %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgUpload, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tc := range []struct {
		t    MsgType
		want string
	}{
		{MsgUpload, "UPLOAD"}, {MsgUploadAck, "UPLOAD_ACK"},
		{MsgQueryVolume, "QUERY_VOLUME"}, {MsgQueryPoint, "QUERY_POINT"},
		{MsgQueryP2P, "QUERY_P2P"}, {MsgResult, "RESULT"},
		{MsgType(99), "MsgType(99)"},
	} {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.t, got, tc.want)
		}
	}
}

func TestQueryCodecs(t *testing.T) {
	vq := VolumeQuery{Loc: 7, Period: 3}
	got, err := decodeVolumeQuery(vq.encode())
	if err != nil || got != vq {
		t.Errorf("volume: %+v, %v", got, err)
	}
	if _, err := decodeVolumeQuery([]byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short volume err = %v", err)
	}

	pq := PointQuery{Loc: 9, Periods: []record.PeriodID{1, 2, 5}}
	pqb, err := pq.encode()
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := decodePointQuery(pqb)
	if err != nil || gotP.Loc != 9 || len(gotP.Periods) != 3 || gotP.Periods[2] != 5 {
		t.Errorf("point: %+v, %v", gotP, err)
	}
	if _, err := decodePointQuery([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short point err = %v", err)
	}
	if _, err := decodePointQuery(append(pqb, 0xff)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes err = %v", err)
	}
	big := PointQuery{Loc: 1, Periods: make([]record.PeriodID, MaxQueryPeriods+1)}
	if _, err := big.encode(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized periods err = %v", err)
	}

	p2 := P2PQuery{LocA: 1, LocB: 2, Periods: []record.PeriodID{4}}
	p2b, err := p2.encode()
	if err != nil {
		t.Fatal(err)
	}
	gotQ, err := decodeP2PQuery(p2b)
	if err != nil || gotQ.LocA != 1 || gotQ.LocB != 2 || gotQ.Periods[0] != 4 {
		t.Errorf("p2p: %+v, %v", gotQ, err)
	}
	// Truncated period list.
	if _, err := decodeP2PQuery(p2b[:18]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated p2p err = %v", err)
	}
}

func TestResultCodec(t *testing.T) {
	for _, r := range []result{
		{ok: true, estimate: 123.456},
		{ok: false, errMsg: "no such record"},
		{ok: true, estimate: math.Inf(1)},
	} {
		got, err := decodeResult(r.encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.ok != r.ok || got.errMsg != r.errMsg {
			t.Errorf("result round trip: %+v vs %+v", got, r)
		}
		if !math.IsInf(r.estimate, 0) && got.estimate != r.estimate {
			t.Errorf("estimate: %v vs %v", got.estimate, r.estimate)
		}
	}
	if _, err := decodeResult([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short result err = %v", err)
	}
}

// newTestStack starts a real TCP server backed by a populated store and
// returns a connected client.
func newTestStack(t *testing.T) (*central.Server, *Client) {
	t.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return store, client
}

func TestUploadAndQueryOverTCP(t *testing.T) {
	_, client := newTestStack(t)

	g, err := synth.NewGenerator(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := g.Pair(synth.PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{4000, 4200, 4100, 4300, 4050},
		VolumesB: []int{8000, 8200, 8100, 8300, 8050},
		NCommon:  700,
	})
	if err != nil {
		t.Fatal(err)
	}
	upload := func(set *record.Set) {
		for i, b := range set.Bitmaps() {
			rec := &record.Record{Location: set.Location(), Period: set.Periods()[i], Bitmap: b}
			if err := client.Upload(rec); err != nil {
				t.Fatalf("upload: %v", err)
			}
		}
	}
	upload(pair.SetA)
	upload(pair.SetB)

	periods := []record.PeriodID{1, 2, 3, 4, 5}

	vol, err := client.QueryVolume(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(vol-4000) / 4000; re > 0.1 {
		t.Errorf("volume = %v", vol)
	}
	pp, err := client.QueryPointPersistent(1, periods)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(pp-700) / 700; re > 0.15 {
		t.Errorf("point persistent = %v", pp)
	}
	p2p, err := client.QueryPointToPointPersistent(1, 2, periods)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(p2p-700) / 700; re > 0.15 {
		t.Errorf("p2p persistent = %v", p2p)
	}
}

func TestRemoteErrors(t *testing.T) {
	_, client := newTestStack(t)

	// Query before any upload.
	_, err := client.QueryVolume(1, 1)
	if !IsRemote(err) {
		t.Errorf("missing record err = %v, want RemoteError", err)
	}
	if err != nil && !strings.Contains(err.Error(), "no record") {
		t.Errorf("err text = %v", err)
	}

	rec, err2 := record.New(1, 1, 64)
	if err2 != nil {
		t.Fatal(err2)
	}
	if err := client.Upload(rec); err != nil {
		t.Fatal(err)
	}
	// Duplicate upload is an application error, not a dead connection.
	err = client.Upload(rec)
	if !IsRemote(err) {
		t.Errorf("duplicate err = %v, want RemoteError", err)
	}
	// The connection is still usable afterwards.
	if _, err := client.QueryVolume(1, 1); err != nil {
		t.Errorf("connection unusable after remote error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, client := newTestStack(t)
	rec, err := record.New(5, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(rec); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if _, err := client.QueryVolume(5, 1); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServeConnOverPipe(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := net.Pipe()
	go srv.ServeConn(serverSide)
	client := NewClient(clientSide)
	defer client.Close()

	rec, err := record.New(9, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	rec.Bitmap.Set(17)
	if err := client.Upload(rec); err != nil {
		t.Fatal(err)
	}
	if got := store.Periods(9); len(got) != 1 || got[0] != 4 {
		t.Errorf("store periods = %v", got)
	}
}

func TestServerRejectsUnknownMessage(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := net.Pipe()
	go srv.ServeConn(serverSide)
	defer clientSide.Close()

	if err := WriteFrame(clientSide, MsgType(77), []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(clientSide)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgResult {
		t.Fatalf("response type = %v", typ)
	}
	res, err := decodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.ok || !strings.Contains(res.errMsg, "unexpected message") {
		t.Errorf("result = %+v", res)
	}
}

func TestServerRejectsCorruptUpload(t *testing.T) {
	_, client := newTestStack(t)
	// Force a malformed record through the raw round trip.
	_, err := client.roundTrip(MsgUpload, []byte("definitely not a record"), MsgUploadAck)
	if !IsRemote(err) {
		t.Errorf("corrupt upload err = %v, want RemoteError", err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Double close is fine; Serve after close fails.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v", err)
	}
}

func TestNewServerNilStore(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil store accepted")
	}
}
