package transport

import (
	"bytes"
	"io"
	"testing"

	"ptm/internal/central"
	"ptm/internal/record"
)

// FuzzReadFrame: frame parsing must never panic or over-allocate on
// hostile streams, and accepted frames must round-trip.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgUpload, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{1, 0, 0, 0, 2, 0xaa})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted frame does not round-trip")
		}
	})
}

// FuzzQueryDecoders: all request decoders must tolerate arbitrary
// payloads.
func FuzzQueryDecoders(f *testing.F) {
	pq, err := PointQuery{Loc: 5, Periods: []record.PeriodID{1, 2}}.encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pq)
	p2p, err := P2PQuery{LocA: 1, LocB: 2, Periods: []record.PeriodID{9}}.encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p2p)
	f.Add(VolumeQuery{Loc: 3, Period: 4}.encode())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeVolumeQuery(data)
		_, _ = decodePointQuery(data)
		_, _ = decodeP2PQuery(data)
		_, _ = decodeResult(data)
		_, _ = decodeLocationList(data)
		_, _ = decodePeriodList(data)
	})
}

// FuzzUploadBatch: the batch decoder must never panic or over-allocate
// on hostile payloads, and accepted batches must re-encode to the same
// bytes.
func FuzzUploadBatch(f *testing.F) {
	recA, err := record.New(1, 1, 64)
	if err != nil {
		f.Fatal(err)
	}
	recB, err := record.New(2, 7, 128)
	if err != nil {
		f.Fatal(err)
	}
	recB.Bitmap.Set(9)
	seed, err := encodeUploadBatch([]*record.Record{recA, recB})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})             // absurd count
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // absurd record length
	f.Add(seed[:len(seed)-3])                         // truncated final record

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeUploadBatch(data)
		if err != nil {
			return
		}
		out, err := encodeUploadBatch(recs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("accepted batch does not round-trip")
		}
		_, _ = decodeBatchResult(data)
	})
}

// FuzzServerDispatch: the full server dispatch path must never panic on
// arbitrary frames; it must always produce a well-formed response frame.
func FuzzServerDispatch(f *testing.F) {
	rec, err := record.New(1, 1, 64)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(MsgUpload), blob)
	f.Add(uint8(MsgQueryVolume), VolumeQuery{Loc: 1, Period: 1}.encode())
	f.Add(uint8(MsgListLocations), []byte{})
	f.Add(uint8(MsgListPeriods), make([]byte, 8))
	f.Add(uint8(99), []byte("junk"))

	store, err := central.NewServer(3)
	if err != nil {
		f.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		respType, resp := srv.dispatch(MsgType(typ), payload)
		// The response must itself be frameable.
		if err := WriteFrame(io.Discard, respType, resp); err != nil {
			t.Fatalf("unframeable response: %v", err)
		}
	})
}
