package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// maxPipeline bounds the number of requests in flight on one connection;
// senders beyond it queue on the pending channel, which is ordinary
// backpressure.
const maxPipeline = 128

// ErrClientClosed is returned for requests issued (or still in flight)
// after Close.
var ErrClientClosed = errors.New("transport: client closed")

// Client is an RSU- or operator-side connection to the central server.
// It is safe for concurrent use; requests are pipelined on the wire: each
// call writes its frame under a short send lock and then waits for its
// response, so many goroutines stream requests back-to-back over one
// connection instead of convoying on a whole request/response exchange.
// The server answers strictly in request order, so a background reader
// matches responses to waiters FIFO. A transport failure (as opposed to
// an application-level RemoteError) poisons the connection: every pending
// and subsequent call fails, and the caller should redial.
// Lock order: sendMu before errMu — the send path marks the connection
// broken (errMu) while still serializing writers; errMu is innermost and
// never held while acquiring sendMu.
//
//ptm:lockorder sendMu<errMu
type Client struct {
	conn net.Conn // set at construction, never reassigned

	sendMu sync.Mutex           // serializes frame writes and pending-queue pushes
	bw     *bufio.Writer        //ptm:guardedby sendMu
	hdr    [frameHeaderLen]byte //ptm:guardedby sendMu (reused frame-header scratch)

	errMu     sync.Mutex
	brokenErr error //ptm:guardedby errMu (sticky transport failure)

	pending   chan *pendingCall
	quit      chan struct{}
	closeOnce sync.Once
}

// pendingCall is one in-flight request awaiting its FIFO response.
type pendingCall struct {
	done chan callResult // buffered(1); the reader never blocks on it
}

type callResult struct {
	t       MsgType
	payload []byte
	err     error
}

// RemoteError is an application-level failure reported by the server
// (duplicate upload, unknown location, saturated record, ...).
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: server: " + e.Msg }

// Dial connects to a central server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// DialTLS connects to a central server over TLS. cfg typically comes from
// the authority's ClientTLSConfig (internal/pki).
func DialTLS(addr string, cfg *tls.Config, timeout time.Duration) (*Client, error) {
	d := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(d, "tcp", addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s with TLS: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (net.Pipe in tests) and
// starts the response reader.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(chan *pendingCall, maxPipeline),
		quit:    make(chan struct{}),
	}
	//ptmlint:allow goroutinehygiene -- readLoop exits when Close closes c.quit and drains pending
	go c.readLoop(bufio.NewReader(conn))
	return c
}

// Close closes the underlying connection and releases every waiter.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.quit) })
	return c.conn.Close()
}

// broken returns the sticky transport failure, if any.
func (c *Client) broken() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.brokenErr
}

// setBroken records the first transport failure; later calls keep it.
func (c *Client) setBroken(err error) error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.brokenErr == nil {
		c.brokenErr = err
	}
	return c.brokenErr
}

// readLoop matches response frames to pending calls in FIFO order. After
// a read failure it stays alive in a draining mode — every queued and
// future call fails fast with the sticky error — until Close.
func (c *Client) readLoop(br *bufio.Reader) {
	for {
		var call *pendingCall
		select {
		case call = <-c.pending:
		case <-c.quit:
			c.drainPending()
			return
		}
		if err := c.broken(); err != nil {
			call.done <- callResult{err: err}
			continue
		}
		t, payload, err := ReadFrame(br)
		if err != nil {
			err = c.setBroken(fmt.Errorf("transport: reading response: %w", err))
			call.done <- callResult{err: err}
			continue
		}
		call.done <- callResult{t: t, payload: payload}
	}
}

// drainPending fails everything still queued at Close. Calls enqueued
// concurrently with the drain are released by their own quit select in
// exchange.
func (c *Client) drainPending() {
	err := c.setBroken(ErrClientClosed)
	for {
		select {
		case call := <-c.pending:
			call.done <- callResult{err: err}
		default:
			return
		}
	}
}

// writeFrameLocked writes one frame to the buffered writer. It must be
// called with sendMu held: the header is encoded into the Client's
// reusable scratch field rather than a local, because bufio.Writer.Write
// retains its argument past the call (a local array would be moved to
// the heap) and the pipelined send path must not allocate per request.
//
//ptm:noalloc
func (c *Client) writeFrameLocked(t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	putFrameHeader(&c.hdr, t, len(payload))
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return fmt.Errorf("transport: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := c.bw.Write(payload); err != nil {
			return fmt.Errorf("transport: writing frame payload: %w", err)
		}
	}
	return nil
}

// exchange writes one frame and waits for its FIFO-matched response,
// expecting wantType.
func (c *Client) exchange(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	call := &pendingCall{done: make(chan callResult, 1)}
	c.sendMu.Lock()
	if err := c.broken(); err != nil {
		c.sendMu.Unlock()
		return nil, err
	}
	if err := c.writeFrameLocked(t, payload); err != nil {
		// A partial write desyncs the stream; poison the connection.
		err = c.setBroken(err)
		c.sendMu.Unlock()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		err = c.setBroken(fmt.Errorf("transport: flushing request: %w", err))
		c.sendMu.Unlock()
		return nil, err
	}
	// Enqueue under the send lock so queue order matches wire order. The
	// reader always drains pending (even in broken mode), so this cannot
	// block indefinitely while the client is open.
	select {
	case c.pending <- call:
	case <-c.quit:
		c.sendMu.Unlock()
		return nil, ErrClientClosed
	}
	c.sendMu.Unlock()

	select {
	case res := <-call.done:
		if res.err != nil {
			return nil, res.err
		}
		if res.t != wantType {
			return nil, fmt.Errorf("%w: response type %v, want %v", ErrBadFrame, res.t, wantType)
		}
		return res.payload, nil
	case <-c.quit:
		return nil, ErrClientClosed
	}
}

// roundTrip sends one frame and reads the response, expecting wantType
// and a result payload.
func (c *Client) roundTrip(t MsgType, payload []byte, wantType MsgType) (result, error) {
	resp, err := c.exchange(t, payload, wantType)
	if err != nil {
		return result{}, err
	}
	res, err := decodeResult(resp)
	if err != nil {
		return result{}, err
	}
	if !res.ok {
		return result{}, &RemoteError{Msg: res.errMsg}
	}
	return res, nil
}

// Upload sends one traffic record and waits for the acknowledgment.
//
//ptm:sink transport upload
func (c *Client) Upload(rec *record.Record) error {
	blob, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(MsgUpload, blob, MsgUploadAck)
	return err
}

// UploadBatch sends a batch of records in one frame — one round trip for
// the whole batch instead of one per record — and returns how many the
// server accepted. The server applies every record even when some fail;
// per-record failures (e.g. one duplicate) surface as a *RemoteError
// naming the first, with accepted still counting the rest.
//
//ptm:sink transport upload
func (c *Client) UploadBatch(recs []*record.Record) (accepted int, err error) {
	payload, err := encodeUploadBatch(recs)
	if err != nil {
		return 0, err
	}
	resp, err := c.exchange(MsgUploadBatch, payload, MsgUploadBatchAck)
	if err != nil {
		return 0, err
	}
	res, err := decodeBatchResult(resp)
	if err != nil {
		return 0, err
	}
	if !res.ok {
		return int(res.accepted), &RemoteError{Msg: res.errMsg}
	}
	return int(res.accepted), nil
}

// QueryVolume returns the Eq. (1) volume estimate for one period.
func (c *Client) QueryVolume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	res, err := c.roundTrip(MsgQueryVolume, VolumeQuery{Loc: loc, Period: p}.encode(), MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointPersistent returns the Eq. (12) point persistent estimate.
func (c *Client) QueryPointPersistent(loc vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := PointQuery{Loc: loc, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryPoint, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointToPointPersistent returns the Eq. (21) estimate between two
// locations.
func (c *Client) QueryPointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := P2PQuery{LocA: locA, LocB: locB, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryP2P, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// listRoundTrip sends a listing request and returns the raw response
// payload after checking the response type.
func (c *Client) listRoundTrip(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	return c.exchange(t, payload, wantType)
}

// ListLocations returns all locations with stored records.
func (c *Client) ListLocations() ([]vhash.LocationID, error) {
	resp, err := c.listRoundTrip(MsgListLocations, nil, MsgLocations)
	if err != nil {
		return nil, err
	}
	return decodeLocationList(resp)
}

// ListPeriods returns the stored periods at one location.
func (c *Client) ListPeriods(loc vhash.LocationID) ([]record.PeriodID, error) {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, uint64(loc))
	resp, err := c.listRoundTrip(MsgListPeriods, payload, MsgPeriods)
	if err != nil {
		return nil, err
	}
	return decodePeriodList(resp)
}

// IsRemote reports whether err is an application-level server error, as
// opposed to a transport failure worth retrying on a new connection.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
