package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Client is an RSU- or operator-side connection to the central server.
// It is safe for concurrent use; requests are serialized on the wire.
type Client struct {
	conn net.Conn // set at construction, never reassigned

	mu sync.Mutex // serializes whole request/response exchanges on the wire
	br *bufio.Reader
	bw *bufio.Writer
}

// RemoteError is an application-level failure reported by the server
// (duplicate upload, unknown location, saturated record, ...).
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: server: " + e.Msg }

// Dial connects to a central server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// DialTLS connects to a central server over TLS. cfg typically comes from
// the authority's ClientTLSConfig (internal/pki).
func DialTLS(addr string, cfg *tls.Config, timeout time.Duration) (*Client, error) {
	d := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(d, "tcp", addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s with TLS: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one frame and reads the response, expecting wantType.
func (c *Client) roundTrip(t MsgType, payload []byte, wantType MsgType) (result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return result{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return result{}, fmt.Errorf("transport: flushing request: %w", err)
	}
	rt, resp, err := ReadFrame(c.br)
	if err != nil {
		return result{}, fmt.Errorf("transport: reading response: %w", err)
	}
	if rt != wantType {
		return result{}, fmt.Errorf("%w: response type %v, want %v", ErrBadFrame, rt, wantType)
	}
	res, err := decodeResult(resp)
	if err != nil {
		return result{}, err
	}
	if !res.ok {
		return result{}, &RemoteError{Msg: res.errMsg}
	}
	return res, nil
}

// Upload sends one traffic record and waits for the acknowledgment.
//
//ptm:sink transport upload
func (c *Client) Upload(rec *record.Record) error {
	blob, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(MsgUpload, blob, MsgUploadAck)
	return err
}

// QueryVolume returns the Eq. (1) volume estimate for one period.
func (c *Client) QueryVolume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	res, err := c.roundTrip(MsgQueryVolume, VolumeQuery{Loc: loc, Period: p}.encode(), MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointPersistent returns the Eq. (12) point persistent estimate.
func (c *Client) QueryPointPersistent(loc vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := PointQuery{Loc: loc, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryPoint, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointToPointPersistent returns the Eq. (21) estimate between two
// locations.
func (c *Client) QueryPointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := P2PQuery{LocA: locA, LocB: locB, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryP2P, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// listRoundTrip sends a listing request and returns the raw response
// payload after checking the response type.
func (c *Client) listRoundTrip(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("transport: flushing request: %w", err)
	}
	rt, resp, err := ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("transport: reading response: %w", err)
	}
	if rt != wantType {
		return nil, fmt.Errorf("%w: response type %v, want %v", ErrBadFrame, rt, wantType)
	}
	return resp, nil
}

// ListLocations returns all locations with stored records.
func (c *Client) ListLocations() ([]vhash.LocationID, error) {
	resp, err := c.listRoundTrip(MsgListLocations, nil, MsgLocations)
	if err != nil {
		return nil, err
	}
	return decodeLocationList(resp)
}

// ListPeriods returns the stored periods at one location.
func (c *Client) ListPeriods(loc vhash.LocationID) ([]record.PeriodID, error) {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, uint64(loc))
	resp, err := c.listRoundTrip(MsgListPeriods, payload, MsgPeriods)
	if err != nil {
		return nil, err
	}
	return decodePeriodList(resp)
}

// IsRemote reports whether err is an application-level server error, as
// opposed to a transport failure worth retrying on a new connection.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
