package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// maxPipeline bounds the number of requests in flight on one connection;
// senders beyond it queue on the pending channel, which is ordinary
// backpressure.
const maxPipeline = 128

// Client errors.
var (
	// ErrClientClosed is returned for requests issued (or still in
	// flight) after Close.
	ErrClientClosed = errors.New("transport: client closed")
	// ErrRedialed fails requests that were in flight on a connection
	// Redial replaced; the request may or may not have reached the
	// server, exactly like any other transport failure.
	ErrRedialed = errors.New("transport: connection replaced by redial")
	// ErrNotRedialable is returned by Redial on a client wrapping a
	// pre-established connection (NewClient) — there is no address to
	// dial again.
	ErrNotRedialable = errors.New("transport: client has no dial address")
)

// session is one connection's worth of client state: the conn, its
// FIFO pending queue, the response reader's lifecycle, and the sticky
// transport failure. A Client replaces its session wholesale on Redial;
// the old session's waiters all fail with the sticky error, and nothing
// from the old connection can leak into the new one.
type session struct {
	conn    net.Conn          // set at construction, never reassigned
	pending chan *pendingCall // FIFO queue of in-flight calls
	quit    chan struct{}     // closed once by shutdown

	errMu     sync.Mutex
	brokenErr error //ptm:guardedby errMu (sticky transport failure)

	closeOnce sync.Once
}

// Client is an RSU- or operator-side connection to the central server.
// It is safe for concurrent use; requests are pipelined on the wire: each
// call writes its frame under a short send lock and then waits for its
// response, so many goroutines stream requests back-to-back over one
// connection instead of convoying on a whole request/response exchange.
// The server answers strictly in request order, so a background reader
// matches responses to waiters FIFO. A transport failure (as opposed to
// an application-level RemoteError) poisons the connection: every pending
// and subsequent call fails — until Redial replaces the connection,
// which the cluster router uses to recover a follower link without
// constructing a new client.
// Lock order: sendMu before the session's errMu — the send path marks
// the connection broken while still serializing writers; errMu is
// innermost and never held while acquiring sendMu.
type Client struct {
	// Dial target, retained for Redial. Empty for NewClient-wrapped
	// connections, which cannot redial.
	addr    string
	tlsCfg  *tls.Config
	timeout time.Duration

	sendMu sync.Mutex           // serializes frame writes, pending pushes, and session swaps
	sess   *session             //ptm:guardedby sendMu (current connection)
	bw     *bufio.Writer        //ptm:guardedby sendMu (wraps sess.conn)
	hdr    [frameHeaderLen]byte //ptm:guardedby sendMu (reused frame-header scratch)
	closed bool                 //ptm:guardedby sendMu
}

// pendingCall is one in-flight request awaiting its FIFO response.
type pendingCall struct {
	done chan callResult // buffered(1); the reader never blocks on it
}

type callResult struct {
	t       MsgType
	payload []byte
	err     error
}

// RemoteError is an application-level failure reported by the server
// (duplicate upload, unknown location, saturated record, ...).
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: server: " + e.Msg }

// Dial connects to a central server. The returned client remembers addr
// and can Redial after a transport failure.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.addr, c.timeout = addr, timeout
	return c, nil
}

// DialTLS connects to a central server over TLS. cfg typically comes from
// the authority's ClientTLSConfig (internal/pki).
func DialTLS(addr string, cfg *tls.Config, timeout time.Duration) (*Client, error) {
	d := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(d, "tcp", addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s with TLS: %w", addr, err)
	}
	c := NewClient(conn)
	c.addr, c.tlsCfg, c.timeout = addr, cfg, timeout
	return c, nil
}

// NewClient wraps an established connection (net.Pipe in tests) and
// starts the response reader. Clients built this way cannot Redial.
//
//ptm:exclusive constructor: the Client is not shared until NewClient returns
func NewClient(conn net.Conn) *Client {
	return &Client{sess: newSession(conn), bw: bufio.NewWriter(conn)}
}

// newSession starts a session and its response reader over conn.
//
//ptm:exclusive constructor: the session is not shared until newSession returns
func newSession(conn net.Conn) *session {
	s := &session{
		conn:    conn,
		pending: make(chan *pendingCall, maxPipeline),
		quit:    make(chan struct{}),
	}
	//ptmlint:allow goroutinehygiene -- readLoop exits when shutdown closes s.quit and drains pending
	go s.readLoop(bufio.NewReader(conn))
	return s
}

// shutdown poisons the session with reason, stops the reader, and closes
// the connection. Idempotent; only the first call's close error is
// returned.
func (s *session) shutdown(reason error) error {
	var err error
	s.closeOnce.Do(func() {
		//ptmlint:allow errdrop -- setBroken returns the (possibly earlier) sticky error; shutdown keeps its own reason
		_ = s.setBroken(reason)
		close(s.quit)
		err = s.conn.Close()
	})
	return err
}

// Close closes the underlying connection and releases every waiter.
func (c *Client) Close() error {
	c.sendMu.Lock()
	c.closed = true
	sess := c.sess
	c.sendMu.Unlock()
	return sess.shutdown(ErrClientClosed)
}

// Redial replaces a broken connection with a freshly dialed one. Calls
// in flight on the old connection fail with ErrRedialed; calls issued
// after Redial returns use the new connection with a clean slate. It is
// the cluster router's recovery path after a node restart or failover —
// the Client (and its place in connection caches) survives, only the
// socket is replaced. Redial on a healthy client is allowed and simply
// reconnects.
func (c *Client) Redial() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if c.addr == "" {
		return ErrNotRedialable
	}
	var conn net.Conn
	var err error
	if c.tlsCfg != nil {
		d := &net.Dialer{Timeout: c.timeout}
		conn, err = tls.DialWithDialer(d, "tcp", c.addr, c.tlsCfg)
	} else {
		conn, err = net.DialTimeout("tcp", c.addr, c.timeout)
	}
	if err != nil {
		// The old session stays as-is (likely already broken); the
		// caller may retry Redial with its own backoff.
		return fmt.Errorf("transport: redialing %s: %w", c.addr, err)
	}
	//ptmlint:allow errdrop -- the old connection is being abandoned; its close error is not actionable
	_ = c.sess.shutdown(ErrRedialed)
	c.sess = newSession(conn)
	c.bw = bufio.NewWriter(conn)
	return nil
}

// broken returns the sticky transport failure, if any.
func (s *session) broken() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.brokenErr
}

// setBroken records the first transport failure; later calls keep it.
func (s *session) setBroken(err error) error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.brokenErr == nil {
		s.brokenErr = err
	}
	return s.brokenErr
}

// readLoop matches response frames to pending calls in FIFO order. After
// a read failure it stays alive in a draining mode — every queued and
// future call fails fast with the sticky error — until shutdown.
func (s *session) readLoop(br *bufio.Reader) {
	for {
		var call *pendingCall
		select {
		case call = <-s.pending:
		case <-s.quit:
			s.drainPending()
			return
		}
		if err := s.broken(); err != nil {
			call.done <- callResult{err: err}
			continue
		}
		t, payload, err := ReadFrame(br)
		if err != nil {
			err = s.setBroken(fmt.Errorf("transport: reading response: %w", err))
			call.done <- callResult{err: err}
			continue
		}
		call.done <- callResult{t: t, payload: payload}
	}
}

// drainPending fails everything still queued at shutdown. Calls enqueued
// concurrently with the drain are released by their own quit select in
// exchange.
func (s *session) drainPending() {
	err := s.setBroken(ErrClientClosed)
	for {
		select {
		case call := <-s.pending:
			call.done <- callResult{err: err}
		default:
			return
		}
	}
}

// writeFrameLocked writes one frame to the buffered writer. It must be
// called with sendMu held: the header is encoded into the Client's
// reusable scratch field rather than a local, because bufio.Writer.Write
// retains its argument past the call (a local array would be moved to
// the heap) and the pipelined send path must not allocate per request.
//
//ptm:noalloc
func (c *Client) writeFrameLocked(t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	putFrameHeader(&c.hdr, t, len(payload))
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return fmt.Errorf("transport: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := c.bw.Write(payload); err != nil {
			return fmt.Errorf("transport: writing frame payload: %w", err)
		}
	}
	return nil
}

// exchange writes one frame and waits for its FIFO-matched response,
// expecting wantType.
func (c *Client) exchange(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	call := &pendingCall{done: make(chan callResult, 1)}
	c.sendMu.Lock()
	if c.closed {
		c.sendMu.Unlock()
		return nil, ErrClientClosed
	}
	sess := c.sess
	if err := sess.broken(); err != nil {
		c.sendMu.Unlock()
		return nil, err
	}
	if err := c.writeFrameLocked(t, payload); err != nil {
		// A partial write desyncs the stream; poison the connection.
		err = sess.setBroken(err)
		c.sendMu.Unlock()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		err = sess.setBroken(fmt.Errorf("transport: flushing request: %w", err))
		c.sendMu.Unlock()
		return nil, err
	}
	// Enqueue under the send lock so queue order matches wire order. The
	// reader always drains pending (even in broken mode), so this cannot
	// block indefinitely while the session is live.
	select {
	case sess.pending <- call:
	case <-sess.quit:
		c.sendMu.Unlock()
		return nil, sess.broken()
	}
	c.sendMu.Unlock()

	select {
	case res := <-call.done:
		if res.err != nil {
			return nil, res.err
		}
		if res.t != wantType {
			return nil, fmt.Errorf("%w: response type %v, want %v", ErrBadFrame, res.t, wantType)
		}
		return res.payload, nil
	case <-sess.quit:
		return nil, sess.broken()
	}
}

// Call sends one raw frame and waits for its FIFO-matched response,
// checking the response type. It is the escape hatch for protocol
// extensions — the cluster subsystem's replication and admin RPCs ride
// on it without this package importing cluster message schemas.
func (c *Client) Call(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	return c.exchange(t, payload, wantType)
}

// roundTrip sends one frame and reads the response, expecting wantType
// and a result payload.
func (c *Client) roundTrip(t MsgType, payload []byte, wantType MsgType) (result, error) {
	resp, err := c.exchange(t, payload, wantType)
	if err != nil {
		return result{}, err
	}
	res, err := decodeResult(resp)
	if err != nil {
		return result{}, err
	}
	if !res.ok {
		return result{}, &RemoteError{Msg: res.errMsg}
	}
	return res, nil
}

// Upload sends one traffic record and waits for the acknowledgment.
//
//ptm:sink transport upload
func (c *Client) Upload(rec *record.Record) error {
	blob, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(MsgUpload, blob, MsgUploadAck)
	return err
}

// UploadBatch sends a batch of records in one frame — one round trip for
// the whole batch instead of one per record — and returns how many the
// server accepted. The server applies every record even when some fail;
// per-record failures (e.g. one duplicate) surface as a *RemoteError
// naming the first, with accepted still counting the rest.
//
//ptm:sink transport upload
func (c *Client) UploadBatch(recs []*record.Record) (accepted int, err error) {
	payload, err := encodeUploadBatch(recs)
	if err != nil {
		return 0, err
	}
	resp, err := c.exchange(MsgUploadBatch, payload, MsgUploadBatchAck)
	if err != nil {
		return 0, err
	}
	res, err := decodeBatchResult(resp)
	if err != nil {
		return 0, err
	}
	if !res.ok {
		return int(res.accepted), &RemoteError{Msg: res.errMsg}
	}
	return int(res.accepted), nil
}

// QueryVolume returns the Eq. (1) volume estimate for one period.
func (c *Client) QueryVolume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	res, err := c.roundTrip(MsgQueryVolume, VolumeQuery{Loc: loc, Period: p}.encode(), MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointPersistent returns the Eq. (12) point persistent estimate.
func (c *Client) QueryPointPersistent(loc vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := PointQuery{Loc: loc, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryPoint, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// QueryPointToPointPersistent returns the Eq. (21) estimate between two
// locations.
func (c *Client) QueryPointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (float64, error) {
	payload, err := P2PQuery{LocA: locA, LocB: locB, Periods: periods}.encode()
	if err != nil {
		return 0, err
	}
	res, err := c.roundTrip(MsgQueryP2P, payload, MsgResult)
	if err != nil {
		return 0, err
	}
	return res.estimate, nil
}

// listRoundTrip sends a listing request and returns the raw response
// payload after checking the response type.
func (c *Client) listRoundTrip(t MsgType, payload []byte, wantType MsgType) ([]byte, error) {
	return c.exchange(t, payload, wantType)
}

// ListLocations returns all locations with stored records.
func (c *Client) ListLocations() ([]vhash.LocationID, error) {
	resp, err := c.listRoundTrip(MsgListLocations, nil, MsgLocations)
	if err != nil {
		return nil, err
	}
	return decodeLocationList(resp)
}

// ListPeriods returns the stored periods at one location.
func (c *Client) ListPeriods(loc vhash.LocationID) ([]record.PeriodID, error) {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, uint64(loc))
	resp, err := c.listRoundTrip(MsgListPeriods, payload, MsgPeriods)
	if err != nil {
		return nil, err
	}
	return decodePeriodList(resp)
}

// IsRemote reports whether err is an application-level server error, as
// opposed to a transport failure worth retrying on a new connection.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
