package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Store is the record store a Server fronts. *central.Server is the
// in-memory implementation; *central.Durable adds a write-ahead log, so
// the upload Ack this server sends only goes out once Ingest has made
// the record as durable as the store promises.
type Store interface {
	// Ingest stores one uploaded record; the Ack is sent iff it
	// returns nil.
	Ingest(*record.Record) error
	// Volume estimates one period's traffic volume (Eq. 1).
	Volume(vhash.LocationID, record.PeriodID) (float64, error)
	// PointPersistent estimates point persistent traffic (Eq. 12).
	PointPersistent(vhash.LocationID, []record.PeriodID) (*core.PointResult, error)
	// PointToPointPersistent estimates point-to-point persistent
	// traffic (Eq. 21).
	PointToPointPersistent(vhash.LocationID, vhash.LocationID, []record.PeriodID) (*core.PointToPointResult, error)
	// Locations lists locations with stored records.
	Locations() []vhash.LocationID
	// Periods lists the stored periods at one location.
	Periods(vhash.LocationID) []record.PeriodID
}

// Extension is an optional interface a Store may implement to handle
// protocol frames beyond the core upload/query set. The cluster node
// (internal/cluster) implements it for ring management, replication,
// and record-fetch frames, without this package importing those
// schemas. HandleFrame returns handled=false for frame types it does
// not recognize; the server then answers with the generic bad-frame
// failure. Implementations must be safe for concurrent use — the
// server calls HandleFrame from every connection's goroutine.
type Extension interface {
	HandleFrame(t MsgType, payload []byte) (respType MsgType, resp []byte, handled bool)
}

// Server exposes a record store over the wire protocol. One goroutine
// serves each accepted connection; connections are independent
// request/response streams.
type Server struct {
	store  Store
	logger *log.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("transport: server closed")

// NewServer wraps a record store (typically *central.Server or the
// WAL-backed *central.Durable). logger may be nil to discard protocol
// warnings.
func NewServer(store Store, logger *log.Logger) (*Server, error) {
	if store == nil {
		return nil, errors.New("transport: nil store")
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{store: store, logger: logger, conns: make(map[net.Conn]struct{})}, nil
}

// Serve accepts connections on ln until Close is called. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//ptmlint:allow errdrop -- losing a just-accepted conn during shutdown is not actionable
			_ = conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ServeConn handles a single pre-established connection (used with
// net.Pipe in tests and by in-process deployments). It blocks until the
// peer closes.
func (s *Server) ServeConn(conn net.Conn) {
	s.serveConn(conn)
}

// Close stops accepting, closes active connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		//ptmlint:allow errdrop -- best-effort teardown; the per-conn goroutine reports read errors
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		//ptmlint:allow errdrop -- double-close on the shutdown path is expected and harmless
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		t, payload, err := ReadFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				s.logger.Printf("transport: read from %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		respType, resp := s.dispatch(t, payload)
		if err := WriteFrame(bw, respType, resp); err != nil {
			s.logger.Printf("transport: write to %v: %v", conn.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			s.logger.Printf("transport: flush to %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatch(t MsgType, payload []byte) (MsgType, []byte) {
	fail := func(rt MsgType, err error) (MsgType, []byte) {
		return rt, result{ok: false, errMsg: err.Error()}.encode()
	}
	failList := func(rt MsgType, err error) (MsgType, []byte) {
		return rt, append([]byte{0}, err.Error()...)
	}
	switch t {
	case MsgUpload:
		rec, err := record.Unmarshal(payload)
		if err != nil {
			return fail(MsgUploadAck, err)
		}
		if err := s.store.Ingest(rec); err != nil {
			return fail(MsgUploadAck, err)
		}
		return MsgUploadAck, result{ok: true}.encode()
	case MsgUploadBatch:
		recs, err := decodeUploadBatch(payload)
		if err != nil {
			return MsgUploadBatchAck, batchResult{ok: false, errMsg: err.Error()}.encode()
		}
		// Apply every record even when some fail: one duplicate must not
		// discard the rest of an RSU's backlog.
		var accepted uint32
		var firstErr error
		for i, rec := range recs {
			if err := s.store.Ingest(rec); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("record %d/%d: %w", i, len(recs), err)
				}
				continue
			}
			accepted++
		}
		if firstErr != nil {
			return MsgUploadBatchAck, batchResult{accepted: accepted, errMsg: firstErr.Error()}.encode()
		}
		return MsgUploadBatchAck, batchResult{ok: true, accepted: accepted}.encode()
	case MsgQueryVolume:
		q, err := decodeVolumeQuery(payload)
		if err != nil {
			return fail(MsgResult, err)
		}
		v, err := s.store.Volume(q.Loc, q.Period)
		if err != nil {
			return fail(MsgResult, err)
		}
		return MsgResult, result{ok: true, estimate: v}.encode()
	case MsgQueryPoint:
		q, err := decodePointQuery(payload)
		if err != nil {
			return fail(MsgResult, err)
		}
		res, err := s.store.PointPersistent(q.Loc, q.Periods)
		if err != nil {
			return fail(MsgResult, err)
		}
		return MsgResult, result{ok: true, estimate: res.Estimate}.encode()
	case MsgQueryP2P:
		q, err := decodeP2PQuery(payload)
		if err != nil {
			return fail(MsgResult, err)
		}
		res, err := s.store.PointToPointPersistent(q.LocA, q.LocB, q.Periods)
		if err != nil {
			return fail(MsgResult, err)
		}
		return MsgResult, result{ok: true, estimate: res.Estimate}.encode()
	case MsgListLocations:
		if len(payload) != 0 {
			return failList(MsgLocations, fmt.Errorf("%w: unexpected payload", ErrBadFrame))
		}
		return MsgLocations, encodeLocationList(s.store.Locations())
	case MsgListPeriods:
		if len(payload) != 8 {
			return failList(MsgPeriods, fmt.Errorf("%w: list-periods payload", ErrBadFrame))
		}
		loc := vhash.LocationID(binary.LittleEndian.Uint64(payload))
		return MsgPeriods, encodePeriodList(s.store.Periods(loc))
	default:
		if ext, ok := s.store.(Extension); ok {
			if respType, resp, handled := ext.HandleFrame(t, payload); handled {
				return respType, resp
			}
		}
		return fail(MsgResult, fmt.Errorf("%w: unexpected message %v", ErrBadFrame, t))
	}
}
