package transport

import (
	"crypto/tls"
	"errors"
	"net"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/pki"
	"ptm/internal/record"
)

// TestTLSEndToEnd runs the full upload/query protocol over TLS 1.3 with
// certificates chained to the transportation authority.
func TestTLSEndToEnd(t *testing.T) {
	now := time.Now()
	authority, err := pki.NewAuthority(now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := authority.IssueTLSServer("127.0.0.1", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(tcpLn, pki.ServerTLSConfig(serverCert))
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	client, err := DialTLS(ln.Addr().String(), authority.ClientTLSConfig(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rec, err := record.New(6, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	rec.Bitmap.Set(77)
	if err := client.Upload(rec); err != nil {
		t.Fatalf("upload over TLS: %v", err)
	}
	if _, err := client.QueryVolume(6, 2); err != nil {
		t.Fatalf("query over TLS: %v", err)
	}
}

// TestTLSRejectsUntrustedServer: clients refuse servers whose certificates
// do not chain to their authority.
func TestTLSRejectsUntrustedServer(t *testing.T) {
	now := time.Now()
	realAuthority, err := pki.NewAuthority(now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rogueAuthority, err := pki.NewAuthority(now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, err := rogueAuthority.IssueTLSServer("127.0.0.1", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(tcpLn, pki.ServerTLSConfig(rogueCert))
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	_, err = DialTLS(ln.Addr().String(), realAuthority.ClientTLSConfig(), time.Second)
	if err == nil {
		t.Fatal("client accepted a rogue server certificate")
	}
	var unknownAuthority interface{ Error() string }
	if !errors.As(err, &unknownAuthority) {
		t.Errorf("unexpected error shape: %v", err)
	}
}

// TestTLSRejectsWrongHost: a certificate for another host fails SNI/SAN
// verification.
func TestTLSRejectsWrongHost(t *testing.T) {
	now := time.Now()
	authority, err := pki.NewAuthority(now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := authority.IssueTLSServer("central.example.com", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(tcpLn, pki.ServerTLSConfig(cert))
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	if _, err := DialTLS(ln.Addr().String(), authority.ClientTLSConfig(), time.Second); err == nil {
		t.Fatal("client accepted a certificate for the wrong host")
	}
}
