// Package transport implements the backhaul between RSUs and the central
// server (Section II-A: "All RSUs are connected wirelessly or by wire to a
// central server"): a length-prefixed binary protocol over TCP for record
// upload and persistent-traffic queries, plus an in-memory pipe transport
// for tests.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType discriminates protocol frames.
type MsgType uint8

// Protocol message types.
const (
	// MsgUpload carries one marshaled traffic record (RSU -> server).
	MsgUpload MsgType = iota + 1
	// MsgUploadAck acknowledges an upload (server -> RSU).
	MsgUploadAck
	// MsgQueryVolume requests a per-period volume estimate.
	MsgQueryVolume
	// MsgQueryPoint requests a point persistent estimate.
	MsgQueryPoint
	// MsgQueryP2P requests a point-to-point persistent estimate.
	MsgQueryP2P
	// MsgResult carries a query result (server -> client).
	MsgResult
	// MsgListLocations requests the stored location IDs.
	MsgListLocations
	// MsgLocations carries the location list (server -> client).
	MsgLocations
	// MsgListPeriods requests the stored periods for one location.
	MsgListPeriods
	// MsgPeriods carries the period list (server -> client).
	MsgPeriods
	// MsgUploadBatch carries several length-prefixed marshaled records in
	// one frame (RSU -> server), amortizing one round trip over the
	// batch.
	MsgUploadBatch
	// MsgUploadBatchAck acknowledges a batch, reporting how many records
	// were accepted and the first per-record failure, if any.
	MsgUploadBatchAck

	// Cluster extension frames (internal/cluster). The core server
	// delegates these to its store's Extension implementation; a
	// non-cluster store answers them with a MsgResult failure.

	// MsgRingGet requests a node's current ring configuration.
	MsgRingGet
	// MsgRing carries a ring configuration (node -> client, and the
	// response to MsgRingSet, echoing the ring now in effect).
	MsgRing
	// MsgRingSet installs a ring configuration on a node if it is newer
	// than the one in effect (admin -> node).
	MsgRingSet
	// MsgReplBatch carries replicated records from a partition leader to
	// a follower, with the shipper's watermark header.
	MsgReplBatch
	// MsgReplAck acknowledges a replication batch once every record in
	// it is as durable on the follower as its store promises.
	MsgReplAck
	// MsgFetchRecords requests a location's full record set (router ->
	// node), for cross-partition joins computed client-side.
	MsgFetchRecords
	// MsgRecords carries a batch of marshaled records (node -> router).
	MsgRecords
	// MsgStatus requests a node's cluster status summary.
	MsgStatus
	// MsgStatusResp carries the JSON-encoded status summary.
	MsgStatusResp
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgUpload:
		return "UPLOAD"
	case MsgUploadAck:
		return "UPLOAD_ACK"
	case MsgQueryVolume:
		return "QUERY_VOLUME"
	case MsgQueryPoint:
		return "QUERY_POINT"
	case MsgQueryP2P:
		return "QUERY_P2P"
	case MsgResult:
		return "RESULT"
	case MsgListLocations:
		return "LIST_LOCATIONS"
	case MsgLocations:
		return "LOCATIONS"
	case MsgListPeriods:
		return "LIST_PERIODS"
	case MsgPeriods:
		return "PERIODS"
	case MsgUploadBatch:
		return "UPLOAD_BATCH"
	case MsgUploadBatchAck:
		return "UPLOAD_BATCH_ACK"
	case MsgRingGet:
		return "RING_GET"
	case MsgRing:
		return "RING"
	case MsgRingSet:
		return "RING_SET"
	case MsgReplBatch:
		return "REPL_BATCH"
	case MsgReplAck:
		return "REPL_ACK"
	case MsgFetchRecords:
		return "FETCH_RECORDS"
	case MsgRecords:
		return "RECORDS"
	case MsgStatus:
		return "STATUS"
	case MsgStatusResp:
		return "STATUS_RESP"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxFrameSize bounds a frame's payload: large enough for a maximal
// record (2^30 bits = 128 MiB plus headers), small enough to reject
// nonsense lengths from corrupted streams.
const MaxFrameSize = 1<<27 + 1024

// Frame codec errors.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameSize")
	ErrBadFrame      = errors.New("transport: malformed frame")
)

// frameHeaderLen is the fixed frame prologue: 4-byte little-endian
// payload length plus the type byte.
const frameHeaderLen = 5

// putFrameHeader encodes the frame prologue into a caller-owned buffer.
// Taking a fixed-size array pointer (rather than returning a slice)
// keeps the header on the caller's stack — or in a reused struct field
// on the Client's pipelined send path — so frame encoding itself never
// allocates.
//
//ptm:noalloc
//ptm:inline
//ptm:nobce
func putFrameHeader(hdr *[frameHeaderLen]byte, t MsgType, payloadLen int) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	hdr[4] = byte(t)
}

// WriteFrame writes one frame: 4-byte little-endian payload length, the
// type byte, then the payload.
//
//ptm:sink transport frame
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [frameHeaderLen]byte
	putFrameHeader(&hdr, t, len(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("transport: writing frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err // io.EOF propagates for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: claimed %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: reading frame payload: %w", err)
	}
	return MsgType(hdr[4]), payload, nil
}
