package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
)

// flakyConn wraps a net.Conn and fails writes after a budget, modeling a
// backhaul that dies mid-stream.
type flakyConn struct {
	net.Conn
	mu          sync.Mutex
	writeBudget int
}

var errInjected = errors.New("injected write failure")

func (c *flakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeBudget <= 0 {
		return 0, errInjected
	}
	if len(p) > c.writeBudget {
		n, _ := c.Conn.Write(p[:c.writeBudget])
		c.writeBudget = 0
		return n, errInjected
	}
	c.writeBudget -= len(p)
	return c.Conn.Write(p)
}

// TestClientSurfacesMidStreamFailure: a connection dying mid-upload must
// produce a transport error (not a RemoteError), so callers know to
// reconnect and retry.
func TestClientSurfacesMidStreamFailure(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := net.Pipe()
	go srv.ServeConn(serverSide)

	client := NewClient(&flakyConn{Conn: clientSide, writeBudget: 10})
	defer client.Close()

	rec, err := record.New(1, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	err = client.Upload(rec)
	if err == nil {
		t.Fatal("mid-stream failure not surfaced")
	}
	if IsRemote(err) {
		t.Errorf("mid-stream failure misclassified as remote: %v", err)
	}
}

// TestServerSurvivesAbruptDisconnects: clients vanishing mid-request must
// not take the server down; subsequent clients work.
func TestServerSurvivesAbruptDisconnects(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	// Several clients send partial frames and slam the connection shut.
	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_, _ = conn.Write([]byte{0xff, 0x00, 0x00}) // partial header
		_ = conn.Close()
	}
	// A half-open connection that sends a valid frame then dies before
	// reading the response.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, MsgListLocations, nil); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The server still answers a well-behaved client.
	client, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rec, err := record.New(2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(rec); err != nil {
		t.Fatalf("healthy client failed after chaos: %v", err)
	}
	locs, err := client.ListLocations()
	if err != nil || len(locs) != 1 {
		t.Fatalf("ListLocations after chaos: %v, %v", locs, err)
	}
}

// TestClientReconnectAfterServerRestart: records buffered at the RSU can
// be delivered to a restarted (state-restored) server.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	addr := ln.Addr().String()

	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := record.New(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(rec1); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	_ = srv.Close()

	// Restart on the same address with the same store (as centrald's
	// snapshot restore would provide).
	srv2, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	client2, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	rec2, err := record.New(1, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := client2.Upload(rec2); err != nil {
		t.Fatal(err)
	}
	if got := store.Periods(1); len(got) != 2 {
		t.Errorf("periods after restart = %v", got)
	}
}
