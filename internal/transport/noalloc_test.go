//go:build !race

// Zero-allocation regression tests for the //ptm:noalloc frame-encode
// hot path, mirroring the perfguard contracts proved at lint time. The
// file is excluded from -race builds because race instrumentation
// introduces allocations unrelated to the contracts under test.

package transport

import (
	"bufio"
	"io"
	"testing"
)

func TestFrameEncodeDoesNotAllocate(t *testing.T) {
	var hdr [frameHeaderLen]byte
	if n := testing.AllocsPerRun(100, func() {
		putFrameHeader(&hdr, MsgUpload, 1<<20)
	}); n != 0 {
		t.Errorf("putFrameHeader allocated %.1f times per run, want 0", n)
	}
}

func TestWriteFrameLockedDoesNotAllocate(t *testing.T) {
	// Only the send path's scratch-field framing is under test, so a
	// Client with just the buffered writer set suffices; the frames drain
	// into io.Discard as the 4 KiB buffer fills.
	c := &Client{bw: bufio.NewWriter(io.Discard)}
	payload := make([]byte, 512)
	if n := testing.AllocsPerRun(100, func() {
		if err := c.writeFrameLocked(MsgUpload, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("writeFrameLocked allocated %.1f times per run, want 0", n)
	}
}
