package core

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

func TestEstimateODVolume(t *testing.T) {
	pool := newIDPool(t, 3, 91)
	const nCommon = 1500
	common := pool.take(nCommon)

	build := func(loc vhash.LocationID, m int, transients int) *record.Record {
		r, err := record.New(loc, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			r.Bitmap.Set(v.Index(loc, m))
		}
		for _, v := range pool.take(transients) {
			r.Bitmap.Set(v.Index(loc, m))
		}
		return r
	}
	recL := build(50, 1<<13, 2500)
	recLP := build(51, 1<<15, 12000)

	res, err := EstimateODVolume(recL, recLP, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-nCommon) / nCommon; re > 0.2 {
		t.Errorf("OD estimate %v vs %d (rel err %.3f)", res.Estimate, nCommon, re)
	}
	if res.T != 1 {
		t.Errorf("T = %d, want 1", res.T)
	}
	if res.M != 1<<13 || res.MPrime != 1<<15 {
		t.Errorf("sizes %d/%d", res.M, res.MPrime)
	}
}

func TestEstimateODVolumeValidation(t *testing.T) {
	r1, err := record.New(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := record.New(2, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateODVolume(nil, r1, 3); !errors.Is(err, record.ErrNilBitmap) {
		t.Errorf("nil err = %v", err)
	}
	if _, err := EstimateODVolume(r1, r2, 3); !errors.Is(err, record.ErrPeriodSkew) {
		t.Errorf("period skew err = %v", err)
	}
	r3 := &record.Record{Location: 3, Period: 1}
	if _, err := EstimateODVolume(r1, r3, 3); !errors.Is(err, record.ErrNilBitmap) {
		t.Errorf("nil bitmap err = %v", err)
	}
}

func TestEstimateODVolumeSwap(t *testing.T) {
	pool := newIDPool(t, 3, 93)
	common := pool.take(400)
	build := func(loc vhash.LocationID, m int) *record.Record {
		r, err := record.New(loc, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			r.Bitmap.Set(v.Index(loc, m))
		}
		for _, v := range pool.take(1000) {
			r.Bitmap.Set(v.Index(loc, m))
		}
		return r
	}
	big := build(60, 1<<14)
	small := build(61, 1<<12)
	res, err := EstimateODVolume(big, small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Error("expected swap when first record is larger")
	}
	if re := math.Abs(res.Estimate-400) / 400; re > 0.35 {
		t.Errorf("swapped OD estimate %v vs 400 (rel err %.3f)", res.Estimate, re)
	}
}

func TestEstimateMultiPointUpperBound(t *testing.T) {
	pool := newIDPool(t, 3, 95)
	// 500 vehicles pass A, B and C every period; 700 more pass only A and
	// B. The true 3-location persistent volume is 500; the A-B pairwise
	// estimate sees 1200, while pairs involving C see ~500 — the bound
	// should bind at a C pair with value ~500.
	all3 := pool.take(500)
	abOnly := pool.take(700)

	build := func(loc vhash.LocationID, members ...[]*vhash.Identity) *record.Set {
		const m, t2, transients = 1 << 13, 4, 2500
		recs := make([]*record.Record, t2)
		for p := 0; p < t2; p++ {
			r, err := record.New(loc, record.PeriodID(p+1), m)
			if err != nil {
				t.Fatal(err)
			}
			for _, grp := range members {
				for _, v := range grp {
					r.Bitmap.Set(v.Index(loc, m))
				}
			}
			for _, v := range pool.take(transients) {
				r.Bitmap.Set(v.Index(loc, m))
			}
			recs[p] = r
		}
		set, err := record.NewSet(recs)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	setA := build(70, all3, abOnly)
	setB := build(71, all3, abOnly)
	setC := build(72, all3)

	res, err := EstimateMultiPointUpperBound([]*record.Set{setA, setB, setC}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpperBound < 400 || res.UpperBound > 650 {
		t.Errorf("upper bound %v, want ~500", res.UpperBound)
	}
	if res.BindingPair[1] != 2 {
		t.Errorf("binding pair %v should involve location C (index 2)", res.BindingPair)
	}
	if ab := res.Pairwise[[2]int{0, 1}]; ab < 1000 || ab > 1400 {
		t.Errorf("A-B pairwise %v, want ~1200", ab)
	}
	// The bound is an upper bound on the truth.
	if res.UpperBound < 500*0.8 {
		t.Errorf("bound %v implausibly below truth 500", res.UpperBound)
	}

	if _, err := EstimateMultiPointUpperBound([]*record.Set{setA}, 3); !errors.Is(err, ErrNeedTwoLocations) {
		t.Errorf("single location err = %v", err)
	}
}
