package core

import (
	"errors"
	"testing"
)

func TestPointConfidenceBrackets(t *testing.T) {
	pool := newIDPool(t, 3, 61)
	const nCommon = 800
	common := pool.take(nCommon)
	set := makeSet(t, pool, 30, 1<<14, common, []int{6000, 7000, 5500, 6500, 6200})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := PointConfidence(res, 0.95, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Hi {
		t.Fatalf("degenerate interval [%v, %v]", iv.Lo, iv.Hi)
	}
	if iv.Lo > res.Estimate || iv.Hi < res.Estimate {
		t.Errorf("interval [%v, %v] excludes its own estimate %v", iv.Lo, iv.Hi, res.Estimate)
	}
	if iv.Lo > nCommon || iv.Hi < nCommon {
		t.Errorf("interval [%v, %v] excludes truth %d", iv.Lo, iv.Hi, nCommon)
	}
	if iv.Level != 0.95 || iv.Replicates == 0 {
		t.Errorf("interval meta: %+v", iv)
	}
}

func TestPointConfidenceWiderAtHigherLevel(t *testing.T) {
	pool := newIDPool(t, 3, 67)
	common := pool.take(500)
	set := makeSet(t, pool, 31, 1<<14, common, []int{6000, 7000, 5500, 6500})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	iv80, err := PointConfidence(res, 0.80, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	iv99, err := PointConfidence(res, 0.99, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if iv99.Hi-iv99.Lo <= iv80.Hi-iv80.Lo {
		t.Errorf("99%% interval [%v,%v] not wider than 80%% [%v,%v]",
			iv99.Lo, iv99.Hi, iv80.Lo, iv80.Hi)
	}
}

func TestPointConfidenceValidation(t *testing.T) {
	pool := newIDPool(t, 3, 71)
	set := makeSet(t, pool, 32, 1<<12, pool.take(100), []int{2000, 2500})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PointConfidence(nil, 0.95, 10, 1); err == nil {
		t.Error("nil result accepted")
	}
	for _, level := range []float64{0, 1, -0.5, 2} {
		if _, err := PointConfidence(res, level, 10, 1); !errors.Is(err, ErrBadLevel) {
			t.Errorf("level %v err = %v", level, err)
		}
	}
	// Default replicates kick in for <= 0.
	iv, err := PointConfidence(res, 0.9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Replicates != defaultReplicates {
		t.Errorf("replicates = %d, want default %d", iv.Replicates, defaultReplicates)
	}
}

func TestPointConfidenceDeterministic(t *testing.T) {
	pool := newIDPool(t, 3, 73)
	set := makeSet(t, pool, 33, 1<<13, pool.take(300), []int{3000, 3500, 3200})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PointConfidence(res, 0.95, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PointConfidence(res, 0.95, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different intervals: %+v vs %+v", a, b)
	}
}

func TestPointToPointConfidenceBrackets(t *testing.T) {
	pool := newIDPool(t, 3, 79)
	const nCommon = 900
	setA, setB := makePair(t, pool, 34, 35, 1<<13, 1<<15, nCommon,
		[]int{3000, 2500, 3200, 2800, 3100},
		[]int{12000, 14000, 13000, 15000, 12500})
	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := PointToPointConfidence(res, 0.95, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Hi {
		t.Fatalf("degenerate interval [%v, %v]", iv.Lo, iv.Hi)
	}
	if iv.Lo > res.Estimate || iv.Hi < res.Estimate {
		t.Errorf("interval [%v, %v] excludes estimate %v", iv.Lo, iv.Hi, res.Estimate)
	}
	if iv.Lo > nCommon || iv.Hi < nCommon {
		t.Errorf("interval [%v, %v] excludes truth %d", iv.Lo, iv.Hi, nCommon)
	}
}

func TestPointToPointConfidenceValidation(t *testing.T) {
	if _, err := PointToPointConfidence(nil, 0.95, 10, 1); err == nil {
		t.Error("nil result accepted")
	}
	pool := newIDPool(t, 3, 83)
	setA, setB := makePair(t, pool, 36, 37, 1<<12, 1<<12, 100,
		[]int{2000, 2200}, []int{2100, 2300})
	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PointToPointConfidence(res, 1.5, 10, 1); !errors.Is(err, ErrBadLevel) {
		t.Errorf("level err = %v", err)
	}
}

// TestPointConfidenceCoverage: across many independent worlds, the 90%
// interval should contain the truth close to 90% of the time. This is the
// defining property of a confidence interval; we accept [75%, 100%] at 40
// worlds to keep the test fast yet discriminating against gross bugs.
func TestPointConfidenceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage study is slow")
	}
	const (
		worlds  = 40
		nCommon = 400
	)
	covered := 0
	for w := 0; w < worlds; w++ {
		pool := newIDPool(t, 3, 1000+uint64(w))
		common := pool.take(nCommon)
		set := makeSet(t, pool, 40, 1<<13, common, []int{4000, 4500, 4200, 4800})
		res, err := EstimatePoint(set)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := PointConfidence(res, 0.90, 150, int64(w))
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo <= nCommon && float64(nCommon) <= iv.Hi {
			covered++
		}
	}
	frac := float64(covered) / worlds
	if frac < 0.75 {
		t.Errorf("coverage %.2f below nominal 0.90 (covered %d/%d)", frac, covered, worlds)
	}
}
