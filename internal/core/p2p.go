package core

import (
	"fmt"
	"math"

	"ptm/internal/lpc"
	"ptm/internal/record"
)

// PointToPointResult carries a point-to-point persistent traffic estimate
// (Section IV-B) and the intermediate quantities of Eq. (21).
type PointToPointResult struct {
	// Estimate is n̂″, the estimated number of vehicles passing both
	// locations in every period, clamped at zero.
	Estimate float64
	// Raw is the unclamped estimator output.
	Raw float64
	// Exact is the estimate from the exact inversion of Eq. (19), i.e.
	// without the paper's ln(1+x) ≈ x approximation. For the bitmap sizes
	// of interest it differs from Raw by well under 0.1%.
	Exact float64
	// M and MPrime are the two joined sizes (M <= MPrime); S the
	// representative-bit parameter; T the number of periods.
	M, MPrime, S, T int
	// Swapped reports whether the locations were reordered so M <= MPrime.
	Swapped bool
	// V0, V0Prime, V0DoublePrime are the zero fractions of E*, E′* and E″*.
	V0, V0Prime, V0DoublePrime float64
	// N and NPrime are the abstract independent-vehicle counts of Eq. (13).
	N, NPrime float64
}

// EstimatePointToPoint computes the paper's point-to-point persistent
// traffic estimator (Eq. 21) from the two locations' record sets. s is the
// number of representative bits per vehicle configured system-wide
// (Section II-D); the estimate is meaningful only if it matches the s the
// vehicles actually used.
func EstimatePointToPoint(setL, setLPrime *record.Set, s int) (*PointToPointResult, error) {
	j, err := JoinPointToPoint(setL, setLPrime)
	if err != nil {
		return nil, err
	}
	return estimateFromP2PJoin(j, s)
}

func estimateFromP2PJoin(j *PointToPointJoin, s int) (*PointToPointResult, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadS, s)
	}
	v0 := j.EStar.FractionZero()
	v0p := j.EStarPrime.FractionZero()
	v0dp := j.EDoublePrime.FractionZero()
	if v0 == 0 || v0p == 0 {
		return nil, fmt.Errorf("%w: V0=%v V0'=%v", ErrSaturated, v0, v0p)
	}
	if v0dp == 0 {
		return nil, fmt.Errorf("%w: E''* has no zero bits", ErrSaturated)
	}
	// Eq. (21): n̂″ = s·m′·(ln V″0 − ln V*0 − ln V′0).
	diff := math.Log(v0dp) - math.Log(v0) - math.Log(v0p)
	mp := float64(j.MPrime)
	raw := float64(s) * mp * diff
	// Exact inversion of Eq. (19): n″ = diff / ln(1 + 1/(s·m′ − s)).
	exact := diff / math.Log1p(1/(float64(s)*mp-float64(s)))

	n, err := lpc.Estimate(j.M, v0)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n: %w", err)
	}
	np, err := lpc.Estimate(j.MPrime, v0p)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n': %w", err)
	}
	return &PointToPointResult{
		Estimate:      math.Max(0, raw),
		Raw:           raw,
		Exact:         exact,
		M:             j.M,
		MPrime:        j.MPrime,
		S:             s,
		T:             j.T,
		Swapped:       j.Swapped,
		V0:            v0,
		V0Prime:       v0p,
		V0DoublePrime: v0dp,
		N:             n,
		NPrime:        np,
	}, nil
}

// EstimatePointToPointBaselineAND is the naive second-level design the
// paper rejects in Section IV-A: AND the two per-location joins and run
// plain linear counting on the result. Because a common vehicle generally
// sets *different* indices at the two locations (probability 1-1/m of
// differing per representative choice), the AND destroys most of the
// common-vehicle signal; the ablation bench quantifies the failure.
func EstimatePointToPointBaselineAND(setL, setLPrime *record.Set) (float64, error) {
	j, err := JoinPointToPoint(setL, setLPrime)
	if err != nil {
		return 0, err
	}
	sStar, err := j.EStar.ExpandTo(j.MPrime)
	if err != nil {
		return 0, err
	}
	and := sStar.Clone()
	if err := and.And(j.EStarPrime); err != nil {
		return 0, err
	}
	v0 := and.FractionZero()
	if v0 == 0 {
		return 0, fmt.Errorf("%w: AND join has no zero bits", ErrSaturated)
	}
	return lpc.Estimate(j.MPrime, v0)
}
