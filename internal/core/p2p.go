package core

import (
	"fmt"
	"math"

	"ptm/internal/bitmap"
	"ptm/internal/lpc"
	"ptm/internal/record"
)

// PointToPointResult carries a point-to-point persistent traffic estimate
// (Section IV-B) and the intermediate quantities of Eq. (21).
type PointToPointResult struct {
	// Estimate is n̂″, the estimated number of vehicles passing both
	// locations in every period, clamped at zero.
	Estimate float64
	// Raw is the unclamped estimator output.
	Raw float64
	// Exact is the estimate from the exact inversion of Eq. (19), i.e.
	// without the paper's ln(1+x) ≈ x approximation. For the bitmap sizes
	// of interest it differs from Raw by well under 0.1%.
	Exact float64
	// M and MPrime are the two joined sizes (M <= MPrime); S the
	// representative-bit parameter; T the number of periods.
	M, MPrime, S, T int
	// Swapped reports whether the locations were reordered so M <= MPrime.
	Swapped bool
	// V0, V0Prime, V0DoublePrime are the zero fractions of E*, E′* and E″*.
	V0, V0Prime, V0DoublePrime float64
	// N and NPrime are the abstract independent-vehicle counts of Eq. (13).
	N, NPrime float64
}

// EstimatePointToPoint computes the paper's point-to-point persistent
// traffic estimator (Eq. 21) from the two locations' record sets. s is the
// number of representative bits per vehicle configured system-wide
// (Section II-D); the estimate is meaningful only if it matches the s the
// vehicles actually used.
func EstimatePointToPoint(setL, setLPrime *record.Set, s int) (*PointToPointResult, error) {
	return EstimatePointToPointWith(nil, setL, setLPrime, s)
}

// EstimatePointToPointWith is EstimatePointToPoint with the two
// first-level joins E* and E′* held in sc, which is Reset on entry — a
// worker that owns one scratch and queries in a loop performs the whole
// two-level pipeline without allocating bitmap storage. The second-level
// join E″* is never materialized at all: its zero count comes from a
// fused OR+popcount over E* (virtually expanded) and E′*. A nil sc
// allocates the two first-level joins fresh.
func EstimatePointToPointWith(sc *bitmap.JoinScratch, setL, setLPrime *record.Set, s int) (*PointToPointResult, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadS, s)
	}
	sc.Reset()
	if setL.Len() < 2 || setLPrime.Len() < 2 {
		return nil, fmt.Errorf("%w: got %d and %d", ErrTooFewPeriods, setL.Len(), setLPrime.Len())
	}
	if err := record.CheckAligned(setL, setLPrime); err != nil {
		return nil, err
	}
	eL, onesL, err := sc.AndAll(setL.Bitmaps())
	if err != nil {
		return nil, fmt.Errorf("core: joining records at L: %w", err)
	}
	eLP, onesLP, err := sc.AndAll(setLPrime.Bitmaps())
	if err != nil {
		return nil, fmt.Errorf("core: joining records at L': %w", err)
	}
	swapped := false
	if eL.Size() > eLP.Size() {
		eL, eLP = eLP, eL
		onesL, onesLP = onesLP, onesL
		swapped = true
	}
	onesDP, mPrime, err := bitmap.OrOnes([]*bitmap.Bitmap{eL, eLP})
	if err != nil {
		return nil, fmt.Errorf("core: second-level OR join: %w", err)
	}
	m := eL.Size()
	v0 := float64(m-onesL) / float64(m)
	v0p := float64(mPrime-onesLP) / float64(mPrime)
	v0dp := float64(mPrime-onesDP) / float64(mPrime)
	return p2pResultFromFractions(m, mPrime, s, setL.Len(), swapped, v0, v0p, v0dp)
}

func estimateFromP2PJoin(j *PointToPointJoin, s int) (*PointToPointResult, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadS, s)
	}
	return p2pResultFromFractions(j.M, j.MPrime, s, j.T, j.Swapped,
		j.EStar.FractionZero(), j.EStarPrime.FractionZero(), j.EDoublePrime.FractionZero())
}

// p2pResultFromFractions inverts Eq. (21) from the measured fractions.
func p2pResultFromFractions(m, mPrime, s, t int, swapped bool, v0, v0p, v0dp float64) (*PointToPointResult, error) {
	if v0 == 0 || v0p == 0 {
		return nil, fmt.Errorf("%w: V0=%v V0'=%v", ErrSaturated, v0, v0p)
	}
	if v0dp == 0 {
		return nil, fmt.Errorf("%w: E''* has no zero bits", ErrSaturated)
	}
	// Eq. (21): n̂″ = s·m′·(ln V″0 − ln V*0 − ln V′0).
	diff := math.Log(v0dp) - math.Log(v0) - math.Log(v0p)
	mp := float64(mPrime)
	raw := float64(s) * mp * diff
	// Exact inversion of Eq. (19): n″ = diff / ln(1 + 1/(s·m′ − s)).
	exact := diff / math.Log1p(1/(float64(s)*mp-float64(s)))

	n, err := lpc.Estimate(m, v0)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n: %w", err)
	}
	np, err := lpc.Estimate(mPrime, v0p)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n': %w", err)
	}
	return &PointToPointResult{
		Estimate:      math.Max(0, raw),
		Raw:           raw,
		Exact:         exact,
		M:             m,
		MPrime:        mPrime,
		S:             s,
		T:             t,
		Swapped:       swapped,
		V0:            v0,
		V0Prime:       v0p,
		V0DoublePrime: v0dp,
		N:             n,
		NPrime:        np,
	}, nil
}

// EstimatePointToPointBaselineAND is the naive second-level design the
// paper rejects in Section IV-A: AND the two per-location joins and run
// plain linear counting on the result. Because a common vehicle generally
// sets *different* indices at the two locations (probability 1-1/m of
// differing per representative choice), the AND destroys most of the
// common-vehicle signal; the ablation bench quantifies the failure.
func EstimatePointToPointBaselineAND(setL, setLPrime *record.Set) (float64, error) {
	return EstimatePointToPointBaselineANDWith(nil, setL, setLPrime)
}

// EstimatePointToPointBaselineANDWith is the baseline with scratch-held
// first-level joins; sc is Reset on entry. A nil sc allocates fresh.
func EstimatePointToPointBaselineANDWith(sc *bitmap.JoinScratch, setL, setLPrime *record.Set) (float64, error) {
	sc.Reset()
	j, err := JoinPointToPointInto(sc, setL, setLPrime)
	if err != nil {
		return 0, err
	}
	ones, mPrime, err := bitmap.AndOnes([]*bitmap.Bitmap{j.EStar, j.EStarPrime})
	if err != nil {
		return 0, err
	}
	v0 := float64(mPrime-ones) / float64(mPrime)
	if v0 == 0 {
		return 0, fmt.Errorf("%w: AND join has no zero bits", ErrSaturated)
	}
	return lpc.Estimate(mPrime, v0)
}
