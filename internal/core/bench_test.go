package core

// Benchmarks for the join pipeline, fused vs materialized, across the
// record sizes (2^10..2^24 bits) and period counts (t = 3, 5, 10) of the
// paper's evaluation. The "materialized" arms run the differential
// harness's reference pipeline (the pre-kernel implementation); the
// "fused" arms run the shipping kernels with a per-loop JoinScratch, the
// steady-state serving configuration. `make bench-json` records the
// results in BENCH_pr3.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/record"
)

// benchSet builds a t-period record set at one location. All records
// share one size (Eq. 2 sizes from the historical average, so this is the
// paper's operating point) and carry ~m/2 one bits (load factor ~2).
func benchSet(tb testing.TB, loc int, t, m int, seed int64) *record.Set {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]*record.Record, t)
	for i := range recs {
		r, err := record.New(1, record.PeriodID(i+1), m)
		if err != nil {
			tb.Fatal(err)
		}
		for k := 0; k < m/2; k++ {
			r.Bitmap.Set(rng.Uint64())
		}
		recs[i] = r
	}
	set, err := record.NewSet(recs)
	if err != nil {
		tb.Fatal(err)
	}
	return set
}

var benchSizes = []int{1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 24}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

var joinSink *PointJoin

func BenchmarkJoinPoint(b *testing.B) {
	for _, m := range benchSizes {
		for _, t := range []int{3, 5, 10} {
			set := benchSet(b, 1, t, m, 1)
			name := fmt.Sprintf("m=2^%d/t=%d", log2(m), t)
			b.Run(name+"/materialized", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j, err := materializedJoinPoint(set, SplitHalves)
					if err != nil {
						b.Fatal(err)
					}
					joinSink = j
				}
			})
			b.Run(name+"/fused", func(b *testing.B) {
				b.ReportAllocs()
				sc := new(bitmap.JoinScratch)
				for i := 0; i < b.N; i++ {
					sc.Reset()
					j, err := JoinPointInto(sc, set, SplitHalves)
					if err != nil {
						b.Fatal(err)
					}
					joinSink = j
				}
			})
		}
	}
}

var p2pSink *PointToPointResult

func BenchmarkJoinPointToPoint(b *testing.B) {
	for _, m := range benchSizes {
		for _, t := range []int{3, 5, 10} {
			// Table I's shape: the L record is 16x smaller than the L'
			// record (m'/m ratios of 8..64), exercising the virtual
			// expansion of both the records and the first-level join.
			mSmall := m / 16
			if mSmall < 64 {
				mSmall = 64
			}
			setL := benchSet(b, 1, t, mSmall, 2)
			setLP := benchSet(b, 2, t, m, 3)
			name := fmt.Sprintf("m=2^%d/t=%d", log2(m), t)
			b.Run(name+"/materialized", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j, err := materializedJoinPointToPoint(setL, setLP)
					if err != nil {
						b.Fatal(err)
					}
					res, err := estimateFromP2PJoin(j, 3)
					if err != nil {
						b.Fatal(err)
					}
					p2pSink = res
				}
			})
			b.Run(name+"/fused", func(b *testing.B) {
				b.ReportAllocs()
				sc := new(bitmap.JoinScratch)
				for i := 0; i < b.N; i++ {
					res, err := EstimatePointToPointWith(sc, setL, setLP, 3)
					if err != nil {
						b.Fatal(err)
					}
					p2pSink = res
				}
			})
		}
	}
}

var estSink *PointResult

// BenchmarkEstimateCache contrasts a cold point estimation (the cache
// miss path: full fused join + store) with a warm repeat of the same
// query (key build + one locked map probe + struct copy). The hit/cold
// ratio in BENCH_pr8.json is the speedup a dashboard replaying a fixed
// window sees; acceptance wants hits ≥100× faster than cold at the
// serving shape (m=2^20, t=10).
func BenchmarkEstimateCache(b *testing.B) {
	for _, m := range []int{1 << 14, 1 << 20, 1 << 24} {
		for _, t := range []int{5, 10} {
			set := benchSet(b, 1, t, m, 5)
			name := fmt.Sprintf("m=2^%d/t=%d", log2(m), t)
			b.Run(name+"/cold", func(b *testing.B) {
				b.ReportAllocs()
				c := NewEstCache(DefaultEstCacheEntries)
				for i := 0; i < b.N; i++ {
					// A fresh epoch per iteration defeats the cache: every
					// call is a miss that computes and stores.
					res, err := c.Point(uint64(i), set, SplitHalves)
					if err != nil {
						b.Fatal(err)
					}
					estSink = res
				}
			})
			b.Run(name+"/hit", func(b *testing.B) {
				b.ReportAllocs()
				c := NewEstCache(DefaultEstCacheEntries)
				if _, err := c.Point(1, set, SplitHalves); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.Point(1, set, SplitHalves)
					if err != nil {
						b.Fatal(err)
					}
					estSink = res
				}
			})
		}
	}
}

// BenchmarkEstimatePoint measures the full point estimator — the fused
// path materializes nothing at all (three AND+popcount streams).
func BenchmarkEstimatePoint(b *testing.B) {
	for _, m := range []int{1 << 14, 1 << 20} {
		for _, t := range []int{5, 10} {
			set := benchSet(b, 1, t, m, 4)
			b.Run(fmt.Sprintf("m=2^%d/t=%d", log2(m), t), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := EstimatePoint(set)
					if err != nil {
						b.Fatal(err)
					}
					estSink = res
				}
			})
		}
	}
}
