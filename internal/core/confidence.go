package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ptm/internal/bitmap"
)

// Confidence intervals for the persistent-traffic estimators.
//
// The paper reports point estimates only. For operational use an interval
// matters: the estimators invert noisy bit fractions, and at small
// persistent volumes the sampling noise is a large relative effect. We
// compute intervals by parametric bootstrap: re-simulate the fitted
// generative model (the abstract independent-vehicle populations of
// Eq. 3/13 plus the estimated common population), re-run the estimator on
// each replicate, and take percentiles. This honestly propagates the
// nonlinearity of the inversion instead of relying on a delta-method
// linearization that breaks exactly where the interval is widest.

// Interval is a two-sided confidence interval for an estimate.
type Interval struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
	// Replicates is the number of bootstrap replicates used.
	Replicates int
}

// ErrBadLevel is returned for confidence levels outside (0, 1).
var ErrBadLevel = errors.New("core: confidence level outside (0, 1)")

// defaultReplicates balances interval stability against latency; 200
// replicates give percentile estimates stable to a few percent.
const defaultReplicates = 200

func percentiles(samples []float64, level float64) (lo, hi float64) {
	sort.Float64s(samples)
	alpha := (1 - level) / 2
	at := func(q float64) float64 {
		pos := q * float64(len(samples)-1)
		i := int(pos)
		if i >= len(samples)-1 {
			return samples[len(samples)-1]
		}
		frac := pos - float64(i)
		return samples[i]*(1-frac) + samples[i+1]*frac
	}
	return at(alpha), at(1 - alpha)
}

// setRandomBits sets n random bit positions in b.
func setRandomBits(b *bitmap.Bitmap, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		b.Set(rng.Uint64())
	}
}

// PointConfidence returns a bootstrap confidence interval for a point
// persistent estimate. replicates <= 0 selects the default. The result's
// randomness is fully determined by seed.
func PointConfidence(res *PointResult, level float64, replicates int, seed int64) (Interval, error) {
	if res == nil {
		return Interval{}, errors.New("core: nil result")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("%w: %v", ErrBadLevel, level)
	}
	if replicates <= 0 {
		replicates = defaultReplicates
	}
	rng := rand.New(rand.NewSource(seed))
	nStar := int(res.Estimate + 0.5)
	nA := int(res.Na - res.Estimate + 0.5)
	nB := int(res.Nb - res.Estimate + 0.5)
	if nA < 0 {
		nA = 0
	}
	if nB < 0 {
		nB = 0
	}
	samples := make([]float64, 0, replicates)
	for r := 0; r < replicates; r++ {
		ea, err := bitmap.New(res.M)
		if err != nil {
			return Interval{}, err
		}
		eb, err := bitmap.New(res.M)
		if err != nil {
			return Interval{}, err
		}
		// Common vehicles set the same bit in both subset joins.
		for i := 0; i < nStar; i++ {
			idx := rng.Uint64()
			ea.Set(idx)
			eb.Set(idx)
		}
		setRandomBits(ea, nA, rng)
		setRandomBits(eb, nB, rng)
		estar := ea.Clone()
		if err := estar.And(eb); err != nil {
			return Interval{}, err
		}
		rep, err := estimateFromPointJoin(&PointJoin{M: res.M, T: res.T, Ea: ea, Eb: eb, EStar: estar})
		if err != nil {
			// Degenerate replicates (possible under extreme load) are
			// skipped rather than aborting the interval.
			continue
		}
		samples = append(samples, rep.Estimate)
	}
	if len(samples) < replicates/2 {
		return Interval{}, fmt.Errorf("%w: %d of %d bootstrap replicates degenerate", ErrDegenerate, replicates-len(samples), replicates)
	}
	lo, hi := percentiles(samples, level)
	return Interval{Lo: lo, Hi: hi, Level: level, Replicates: len(samples)}, nil
}

// PointToPointConfidence returns a bootstrap confidence interval for a
// point-to-point persistent estimate.
func PointToPointConfidence(res *PointToPointResult, level float64, replicates int, seed int64) (Interval, error) {
	if res == nil {
		return Interval{}, errors.New("core: nil result")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("%w: %v", ErrBadLevel, level)
	}
	if replicates <= 0 {
		replicates = defaultReplicates
	}
	rng := rand.New(rand.NewSource(seed))
	nCommon := int(res.Estimate + 0.5)
	nL := int(res.N - res.Estimate + 0.5)
	nLP := int(res.NPrime - res.Estimate + 0.5)
	if nL < 0 {
		nL = 0
	}
	if nLP < 0 {
		nLP = 0
	}
	s := res.S
	samples := make([]float64, 0, replicates)
	for r := 0; r < replicates; r++ {
		eL, err := bitmap.New(res.M)
		if err != nil {
			return Interval{}, err
		}
		eLP, err := bitmap.New(res.MPrime)
		if err != nil {
			return Interval{}, err
		}
		// A common vehicle picks one of s representative hashes at each
		// location: same slot (probability 1/s) means the same 64-bit
		// hash, hence congruent indices after the mod reduction.
		for i := 0; i < nCommon; i++ {
			h1 := rng.Uint64()
			eL.Set(h1)
			if rng.Intn(s) == 0 {
				eLP.Set(h1)
			} else {
				eLP.Set(rng.Uint64())
			}
		}
		setRandomBits(eL, nL, rng)
		setRandomBits(eLP, nLP, rng)
		sStar, err := eL.ExpandTo(res.MPrime)
		if err != nil {
			return Interval{}, err
		}
		edp := sStar.Clone()
		if err := edp.Or(eLP); err != nil {
			return Interval{}, err
		}
		rep, err := estimateFromP2PJoin(&PointToPointJoin{
			M: res.M, MPrime: res.MPrime, T: res.T,
			EStar: eL, EStarPrime: eLP, EDoublePrime: edp,
		}, s)
		if err != nil {
			continue
		}
		samples = append(samples, rep.Estimate)
	}
	if len(samples) < replicates/2 {
		return Interval{}, fmt.Errorf("%w: %d of %d bootstrap replicates degenerate", ErrDegenerate, replicates-len(samples), replicates)
	}
	lo, hi := percentiles(samples, level)
	return Interval{Lo: lo, Hi: hi, Level: level, Replicates: len(samples)}, nil
}
