package core

import (
	"fmt"
	"math"

	"ptm/internal/bitmap"
	"ptm/internal/record"
)

// Section III-B notes that "dividing Π into more than two sets is
// possible" but adopts the two-set design for simplicity. This file
// implements the k-set generalization as an extension, used by the
// ablation benchmarks.
//
// With Π divided into k subsets whose AND-joins E_1..E_k have zero
// fractions V_j = q^{n_j} (q = 1 − 1/m), a bit of E* = E_1 ∧ ... ∧ E_k is
// one with probability
//
//	F(n*) = 1 − q^{n*} + q^{n*} · Π_j (1 − q^{n_j − n*})
//	      = 1 − u + u · Π_j (1 − V_j/u),  u = q^{n*}.
//
// F is monotonically non-decreasing in n* (proved for k = 2, 3 by direct
// expansion; the derivative in u is −Σ_{i<j} a_i a_j Π_{l∉{i,j}}(1−a_l)
// with a_j = V_j/u ∈ [0,1], hence ≤ 0), so the measured one-fraction V*_1
// inverts by bisection. For k = 2 this reproduces Eq. (12) exactly.

// KWayResult carries the output of the k-way point persistent estimator.
type KWayResult struct {
	Estimate float64   // n̂*, clamped at zero
	K        int       // number of subsets actually used
	M, T     int       // joined size and period count
	V0       []float64 // zero fraction of each subset join
	V1       float64   // one fraction of E*
}

// EstimatePointKWay generalizes the point persistent estimator to k
// subsets. k must be in [2, t]; records are assigned to subsets round-robin
// in period order, so subset sizes differ by at most one.
//
// Like the two-way estimator, only fractions are consumed, so each
// subset's V0 comes from a fused AND+popcount kernel at the subset's own
// largest size (the fraction is invariant under replication expansion)
// and V1 from the same kernel over all t records — no expansion or join
// is ever materialized.
func EstimatePointKWay(set *record.Set, k int) (*KWayResult, error) {
	if set.Len() < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewPeriods, set.Len())
	}
	if k < 2 || k > set.Len() {
		return nil, fmt.Errorf("core: k must be in [2, t=%d], got %d", set.Len(), k)
	}
	bs := set.Bitmaps()
	m := set.MaxSize()
	groups := make([][]*bitmap.Bitmap, k)
	for i, b := range bs {
		groups[i%k] = append(groups[i%k], b)
	}
	v0 := make([]float64, k)
	for i, g := range groups {
		ones, mg, err := bitmap.AndOnes(g)
		if err != nil {
			return nil, fmt.Errorf("core: joining subset %d: %w", i, err)
		}
		v0[i] = float64(mg-ones) / float64(mg)
		if v0[i] == 0 {
			return nil, fmt.Errorf("%w: subset %d", ErrSaturated, i)
		}
	}
	onesStar, _, err := bitmap.AndOnes(bs)
	if err != nil {
		return nil, fmt.Errorf("core: joining E*: %w", err)
	}
	v1 := float64(onesStar) / float64(m)

	nstar, err := invertKWay(m, v0, v1)
	if err != nil {
		return nil, err
	}
	return &KWayResult{Estimate: nstar, K: k, M: m, T: set.Len(), V0: v0, V1: v1}, nil
}

// invertKWay solves F(n*) = v1 for n* by bisection on [0, min_j n_j].
func invertKWay(m int, v0 []float64, v1 float64) (float64, error) {
	logq := math.Log1p(-1 / float64(m))
	// Upper bound: the persistent traffic cannot exceed the smallest
	// abstract subset cardinality.
	nMax := math.Inf(1)
	for _, v := range v0 {
		if n := math.Log(v) / logq; n < nMax {
			nMax = n
		}
	}
	f := func(nstar float64) float64 {
		u := math.Exp(logq * nstar) // q^{n*}
		prod := 1.0
		for _, v := range v0 {
			term := 1 - v/u
			if term < 0 {
				term = 0
			}
			prod *= term
		}
		return 1 - u + u*prod
	}
	// F(0) is the all-transient floor; measured v1 below it (by sampling
	// noise) means n̂* = 0. F(nMax) is the ceiling.
	if v1 <= f(0) {
		return 0, nil
	}
	if v1 >= f(nMax) {
		return nMax, nil
	}
	lo, hi := 0.0, nMax
	for i := 0; i < 200 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if f(mid) < v1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
