package core

import (
	"errors"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// estTestSets builds a deterministic point set and an aligned second-
// location set for point-to-point calls.
func estTestSets(t *testing.T) (*record.Set, *record.Set) {
	t.Helper()
	pool := newIDPool(t, 3, 77)
	common := pool.take(40)
	setA := makeSet(t, pool, 11, 1<<10, common, []int{120, 140, 110, 130})
	setB := makeSet(t, pool, 12, 1<<10, common, []int{100, 90, 150, 95})
	return setA, setB
}

// TestEstCachePointHitBitIdentical: a hit must reproduce the cold
// result bit for bit — every field, floats included. The cache stores
// the cold struct and returns copies, so this also catches any future
// "recompute on hit" regression.
func TestEstCachePointHitBitIdentical(t *testing.T) {
	set, _ := estTestSets(t)
	c := NewEstCache(16)

	cold, err := EstimatePointOpts(set, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := c.Point(5, set, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.Point(5, set, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	if *miss != *cold {
		t.Fatalf("miss result diverges from uncached: %+v vs %+v", miss, cold)
	}
	if *hit != *cold {
		t.Fatalf("hit result diverges from uncached: %+v vs %+v", hit, cold)
	}
	if hit == miss {
		t.Fatal("hit returned the stored pointer; callers could corrupt the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after miss+hit: %+v", st)
	}
}

// TestEstCacheP2PHitBitIdentical mirrors the point test for Eq. 21.
func TestEstCacheP2PHitBitIdentical(t *testing.T) {
	setA, setB := estTestSets(t)
	c := NewEstCache(16)

	cold, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := c.PointToPoint(1, 2, setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.PointToPoint(1, 2, setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *miss != *cold || *hit != *cold {
		t.Fatalf("cached p2p diverges: miss=%+v hit=%+v cold=%+v", miss, hit, cold)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEstCacheEpochFencing: changing the epoch must force a recompute,
// and the stale epoch's entry must stay reachable only under its own
// epoch (lazy invalidation never returns stale data).
func TestEstCacheEpochFencing(t *testing.T) {
	set, _ := estTestSets(t)
	c := NewEstCache(16)

	if _, err := c.Point(1, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Point(2, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("epoch bump did not miss: %+v", st)
	}
	if _, err := c.Point(1, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("old epoch no longer hits its own entry: %+v", st)
	}
}

// TestEstCacheKeySeparation: strategy, location, and period set all
// partition the key space — entries must never bleed across them.
func TestEstCacheKeySeparation(t *testing.T) {
	pool := newIDPool(t, 3, 78)
	common := pool.take(30)
	set := makeSet(t, pool, 21, 1<<9, common, []int{80, 90, 85, 95})
	other := makeSet(t, pool, 22, 1<<9, common, []int{80, 90, 85, 95})
	sub, err := record.NewSet([]*record.Record{
		{Location: 21, Period: set.PeriodAt(0), Bitmap: set.Bitmaps()[0]},
		{Location: 21, Period: set.PeriodAt(1), Bitmap: set.Bitmaps()[1]},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := NewEstCache(16)
	for _, q := range []struct {
		set      *record.Set
		strategy SplitStrategy
	}{
		{set, SplitHalves},
		{set, SplitInterleaved},
		{other, SplitHalves},
		{sub, SplitHalves},
	} {
		want, err := EstimatePointOpts(q.set, q.strategy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Point(7, q.set, q.strategy)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("first call diverges for %v/%v", q.set.Location(), q.strategy)
		}
	}
	st := c.Stats()
	if st.Misses != 4 || st.Hits != 0 || st.Entries != 4 {
		t.Fatalf("distinct keys collided: %+v", st)
	}
}

// TestEstCacheLRUEviction: capacity bounds the entry count and evicts
// least-recently-used first.
func TestEstCacheLRUEviction(t *testing.T) {
	set, _ := estTestSets(t)
	c := NewEstCache(3)

	for epoch := uint64(1); epoch <= 4; epoch++ {
		if _, err := c.Point(epoch, set, SplitHalves); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("Len = %d, want capacity 3", n)
	}
	// Epoch 1 was least recently used and must be gone; 2..4 remain.
	if _, err := c.Point(2, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("epoch 2 should have survived: %+v", st)
	}
	if _, err := c.Point(1, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 5 {
		t.Fatalf("epoch 1 should have been evicted: %+v", st)
	}
}

// TestEstCacheErrorsNotCached: failed estimations leave no entry behind.
func TestEstCacheErrorsNotCached(t *testing.T) {
	pool := newIDPool(t, 3, 79)
	single := makeSet(t, pool, 31, 64, nil, []int{5}) // one period: too few
	c := NewEstCache(8)
	for i := 0; i < 2; i++ {
		if _, err := c.Point(1, single, SplitHalves); !errors.Is(err, ErrTooFewPeriods) {
			t.Fatalf("err = %v, want ErrTooFewPeriods", err)
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("error cached: Len = %d", n)
	}
}

// TestEstCacheNilComputes: a nil cache (capacity <= 0) is the
// always-compute path and must match the direct estimator.
func TestEstCacheNilComputes(t *testing.T) {
	setA, setB := estTestSets(t)
	var c *EstCache = NewEstCache(0)
	if c != nil {
		t.Fatal("NewEstCache(0) should disable caching")
	}
	want, err := EstimatePointOpts(setA, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Point(1, setA, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatal("nil cache diverges from direct estimation")
	}
	wantP, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := c.PointToPoint(1, 2, setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *gotP != *wantP {
		t.Fatal("nil cache p2p diverges from direct estimation")
	}
	c.NoteInvalidation() // must not panic
	if st := c.Stats(); st != (EstCacheStats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache Len: %d", c.Len())
	}
}

// TestEstCachePeriodVerification: entries are only served for the exact
// period set, even when the phash would collide (simulated by storing
// under a forged key).
func TestEstCachePeriodVerification(t *testing.T) {
	set, _ := estTestSets(t)
	c := NewEstCache(8)
	if _, err := c.Point(3, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	// Forge the entry's periods so they no longer match the set: the
	// next lookup must treat it as a miss and overwrite it.
	c.mu.Lock()
	for _, el := range c.entries {
		el.Value.(*estEntry).periods[0]++
	}
	c.mu.Unlock()
	if _, err := c.Point(3, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("collision must degrade to miss-and-overwrite: %+v", st)
	}
	if _, err := c.Point(3, set, SplitHalves); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("overwritten entry should now hit: %+v", st)
	}
}

func TestHashPeriodsDistinguishesSets(t *testing.T) {
	mk := func(periods ...record.PeriodID) *record.Set {
		recs := make([]*record.Record, len(periods))
		for i, p := range periods {
			r, err := record.New(vhash.LocationID(1), p, 64)
			if err != nil {
				t.Fatal(err)
			}
			recs[i] = r
		}
		set, err := record.NewSet(recs)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	a := hashPeriods(mk(1, 2, 3))
	b := hashPeriods(mk(1, 2, 4))
	d := hashPeriods(mk(1, 2))
	if a == b || a == d || b == d {
		t.Fatalf("FNV collisions across trivial sets: %x %x %x", a, b, d)
	}
	if got := hashPeriods(mk(1, 2, 3)); got != a {
		t.Fatalf("hashPeriods not deterministic: %x vs %x", got, a)
	}
}
