package core

import (
	"fmt"
	"math"

	"ptm/internal/bitmap"
	"ptm/internal/lpc"
	"ptm/internal/record"
)

// PointResult carries a point persistent traffic estimate (Section III-B)
// plus the intermediate quantities the formula consumed, for diagnostics
// and for the experiment harness.
type PointResult struct {
	// Estimate is n̂*, the estimated number of common vehicles, clamped
	// at zero.
	Estimate float64
	// Raw is the unclamped estimator output; small negative values occur
	// by sampling noise when the true persistent volume is near zero.
	Raw float64
	// M is the joined bitmap size, T the number of periods.
	M, T int
	// Va0 and Vb0 are the zero fractions of the subset joins E_a and E_b;
	// V1 is the one fraction of E* (the quantities of Eq. 12).
	Va0, Vb0, V1 float64
	// Na and Nb are the abstract independent-vehicle counts of Eq. (3).
	Na, Nb float64
}

// EstimatePoint computes the paper's point persistent traffic estimator
// (Eq. 12) over the records of one location with the paper's contiguous
// half split. See EstimatePointOpts for strategy control.
func EstimatePoint(set *record.Set) (*PointResult, error) {
	return EstimatePointOpts(set, SplitHalves)
}

// EstimatePointOpts is EstimatePoint with an explicit split strategy.
//
// The estimator consumes only the three bit fractions of Eq. (12), so no
// joined bitmap is ever materialized: Va0 and Vb0 come from fused
// AND+popcount kernels over each subset, and V1 from the same kernel over
// all t records (E* = E_a ∧ E_b is the AND of every record, by
// associativity). A subset join's zero fraction is invariant under the
// replication expansion, so counting at the subset's own largest size
// yields bit-for-bit the same fraction the materialized pipeline measured
// at m (DESIGN.md §8).
func EstimatePointOpts(set *record.Set, strategy SplitStrategy) (*PointResult, error) {
	if set.Len() < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewPeriods, set.Len())
	}
	bs := set.Bitmaps()
	m := set.MaxSize()
	pa, pb := strategy.split(bs)
	va0, vb0, v1, err := pointFractions(bs, pa, pb, m)
	if err != nil {
		return nil, err
	}
	return pointResultFromFractions(m, set.Len(), va0, vb0, v1)
}

// pointFractions measures the three bit fractions of Eq. (12) — the zero
// fractions of the subset joins E_a and E_b and the one fraction of E* —
// with fused AND+popcount kernels. This is the measurement hot path of
// the point estimator: it runs once per query over every record word,
// and it must stay allocation-free because the kernels it drives are.
// The AndOnes calls happen in the order pa, pb, bs so the floating-point
// results match the pre-refactor estimator bit for bit.
//
//ptm:noalloc
func pointFractions(bs, pa, pb []*bitmap.Bitmap, m int) (va0, vb0, v1 float64, err error) {
	onesA, mA, err := bitmap.AndOnes(pa)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: joining Π_a: %w", err)
	}
	onesB, mB, err := bitmap.AndOnes(pb)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: joining Π_b: %w", err)
	}
	onesStar, _, err := bitmap.AndOnes(bs)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: joining E*: %w", err)
	}
	va0 = float64(mA-onesA) / float64(mA)
	vb0 = float64(mB-onesB) / float64(mB)
	v1 = float64(onesStar) / float64(m)
	return va0, vb0, v1, nil
}

func estimateFromPointJoin(j *PointJoin) (*PointResult, error) {
	return pointResultFromFractions(j.M, j.T, j.Ea.FractionZero(), j.Eb.FractionZero(), j.EStar.FractionOne())
}

// pointResultFromFractions inverts Eq. (12) from the measured fractions.
func pointResultFromFractions(m, t int, va0, vb0, v1 float64) (*PointResult, error) {
	if va0 == 0 || vb0 == 0 {
		return nil, fmt.Errorf("%w: Va0=%v Vb0=%v", ErrSaturated, va0, vb0)
	}
	// Eq. (12): n̂* = [ln Va0 + ln Vb0 − ln(V1 + Va0 + Vb0 − 1)] / ln(1 − 1/m).
	arg := v1 + va0 + vb0 - 1
	if arg <= 0 {
		return nil, fmt.Errorf("%w: V1+Va0+Vb0-1 = %v", ErrDegenerate, arg)
	}
	logq := math.Log1p(-1 / float64(m))
	raw := (math.Log(va0) + math.Log(vb0) - math.Log(arg)) / logq

	na, err := lpc.Estimate(m, va0)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n_a: %w", err)
	}
	nb, err := lpc.Estimate(m, vb0)
	if err != nil {
		return nil, fmt.Errorf("core: estimating n_b: %w", err)
	}
	return &PointResult{
		Estimate: math.Max(0, raw),
		Raw:      raw,
		M:        m,
		T:        t,
		Va0:      va0,
		Vb0:      vb0,
		V1:       v1,
		Na:       na,
		Nb:       nb,
	}, nil
}

// EstimatePointBaseline is the benchmark method of Section VI-B: apply
// plain linear probabilistic counting (Eq. 1) directly to E*, the AND of
// all t records. It systematically over-counts because transient-vehicle
// collisions also leave ones in E*; Fig. 4 quantifies the gap. Like
// EstimatePointOpts, it is a single fused count — E* never exists in
// memory.
//
//ptm:noalloc
func EstimatePointBaseline(set *record.Set) (float64, error) {
	if set.Len() < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrTooFewPeriods, set.Len())
	}
	ones, m, err := bitmap.AndOnes(set.Bitmaps())
	if err != nil {
		return 0, fmt.Errorf("core: joining E*: %w", err)
	}
	v0 := float64(m-ones) / float64(m)
	if v0 == 0 {
		return 0, fmt.Errorf("%w: E* has no zero bits", ErrSaturated)
	}
	return lpc.Estimate(m, v0)
}

// EstimateVolume estimates a single record's plain traffic volume with
// Eq. (1); this is the per-period point (non-persistent) measurement.
func EstimateVolume(r *record.Record) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	n, err := lpc.Estimate(r.Size(), r.Bitmap.FractionZero())
	if err != nil {
		return 0, fmt.Errorf("core: volume estimate: %w", err)
	}
	return n, nil
}
