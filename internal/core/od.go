package core

import (
	"errors"
	"fmt"

	"ptm/internal/bitmap"
	"ptm/internal/record"
)

// Beyond the paper's persistent estimators, the same join machinery
// answers two adjacent questions:
//
//   - Single-period point-to-point volume (the problem of the paper's
//     refs [15]/[16]): how many vehicles passed both L and L' during ONE
//     period. Setting t = 1 in the Section IV derivation changes nothing
//     — E* and E'* are simply the period's records — so Eq. (21) applies
//     directly.
//   - Multi-location persistent traffic: vehicles passing ALL of k >= 3
//     locations in every period. A closed-form estimator would need the
//     joint representative-bit correlation structure across k locations;
//     instead we expose the rigorous upper bound min over pairs, which is
//     tight when one pair dominates.

// ErrNeedTwoLocations is returned for multi-location queries with fewer
// than two locations.
var ErrNeedTwoLocations = errors.New("core: need at least two locations")

// EstimateODVolume estimates the number of vehicles that passed both
// locations during one measurement period, from the two locations'
// records for that period. The records must be from the same period; s is
// the system-wide representative-bit count.
func EstimateODVolume(recL, recLPrime *record.Record, s int) (*PointToPointResult, error) {
	if recL == nil || recLPrime == nil {
		return nil, record.ErrNilBitmap
	}
	if err := recL.Validate(); err != nil {
		return nil, err
	}
	if err := recLPrime.Validate(); err != nil {
		return nil, err
	}
	if recL.Period != recLPrime.Period {
		return nil, fmt.Errorf("%w: periods %d and %d", record.ErrPeriodSkew, recL.Period, recLPrime.Period)
	}
	if s < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadS, s)
	}
	eL, eLP := recL.Bitmap, recLPrime.Bitmap
	swapped := false
	if eL.Size() > eLP.Size() {
		eL, eLP = eLP, eL
		swapped = true
	}
	// The second-level join E'' = (E* expanded) ∨ E'* is consumed only
	// through its zero fraction; the fused OR+popcount kernel avoids
	// materializing either the expansion or the join.
	onesDP, mPrime, err := bitmap.OrOnes([]*bitmap.Bitmap{eL, eLP})
	if err != nil {
		return nil, err
	}
	v0dp := float64(mPrime-onesDP) / float64(mPrime)
	return p2pResultFromFractions(eL.Size(), mPrime, s, 1, swapped,
		eL.FractionZero(), eLP.FractionZero(), v0dp)
}

// MultiPointResult is an upper bound on the persistent traffic through
// three or more locations.
type MultiPointResult struct {
	// UpperBound is min over location pairs of the pairwise persistent
	// estimate — a vehicle passing all locations passes every pair.
	UpperBound float64
	// BindingPair indexes (into the input slice) the pair that attains
	// the bound.
	BindingPair [2]int
	// Pairwise holds every pairwise estimate, row-major upper triangle.
	Pairwise map[[2]int]float64
}

// EstimateMultiPointUpperBound bounds the number of vehicles passing ALL
// of the given locations in every period by the minimum pairwise
// point-to-point persistent estimate.
func EstimateMultiPointUpperBound(sets []*record.Set, s int) (*MultiPointResult, error) {
	if len(sets) < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrNeedTwoLocations, len(sets))
	}
	res := &MultiPointResult{
		UpperBound: -1,
		Pairwise:   make(map[[2]int]float64),
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			est, err := EstimatePointToPoint(sets[i], sets[j], s)
			if err != nil {
				return nil, fmt.Errorf("core: pair (%d,%d): %w", i, j, err)
			}
			key := [2]int{i, j}
			res.Pairwise[key] = est.Estimate
			if res.UpperBound < 0 || est.Estimate < res.UpperBound {
				res.UpperBound = est.Estimate
				res.BindingPair = key
			}
		}
	}
	return res, nil
}
