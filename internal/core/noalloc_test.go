//go:build !race

// Zero-allocation regression tests for the //ptm:noalloc estimator hot
// paths, mirroring the perfguard contracts proved at lint time. The file
// is excluded from -race builds because race instrumentation introduces
// allocations unrelated to the contracts under test.

package core

import "testing"

func TestEstimatorHotPathsDoNotAllocate(t *testing.T) {
	pool := newIDPool(t, 2, 42)
	common := pool.take(50)
	set := makeSet(t, pool, 7, 1<<10, common, []int{40, 40, 40, 40})
	bs := set.Bitmaps()
	pa, pb := SplitHalves.split(bs)
	m := set.MaxSize()
	var sink float64

	if n := testing.AllocsPerRun(100, func() {
		va0, vb0, v1, err := pointFractions(bs, pa, pb, m)
		if err != nil {
			t.Fatal(err)
		}
		sink = va0 + vb0 + v1
	}); n != 0 {
		t.Errorf("pointFractions allocated %.1f times per run, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		est, err := EstimatePointBaseline(set)
		if err != nil {
			t.Fatal(err)
		}
		sink = est
	}); n != 0 {
		t.Errorf("EstimatePointBaseline allocated %.1f times per run, want 0", n)
	}

	_ = sink
}

// TestEstCacheHelpersDoNotAllocate mirrors the //ptm:noalloc contracts
// on the estimate cache's per-lookup helpers (these run on every query,
// hit or miss).
func TestEstCacheHelpersDoNotAllocate(t *testing.T) {
	pool := newIDPool(t, 2, 43)
	set := makeSet(t, pool, 8, 1<<8, pool.take(20), []int{10, 10, 10})
	periods := set.Periods()
	c := NewEstCache(4)
	var sinkU uint64
	var sinkB bool

	if n := testing.AllocsPerRun(100, func() {
		sinkU = hashPeriods(set)
	}); n != 0 {
		t.Errorf("hashPeriods allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sinkB = periodsMatch(periods, set)
	}); n != 0 {
		t.Errorf("periodsMatch allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.NoteInvalidation()
	}); n != 0 {
		t.Errorf("NoteInvalidation allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sinkU = uint64(set.PeriodAt(0))
	}); n != 0 {
		t.Errorf("PeriodAt allocated %.1f times per run, want 0", n)
	}
	_, _ = sinkU, sinkB
}
