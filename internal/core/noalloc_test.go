//go:build !race

// Zero-allocation regression tests for the //ptm:noalloc estimator hot
// paths, mirroring the perfguard contracts proved at lint time. The file
// is excluded from -race builds because race instrumentation introduces
// allocations unrelated to the contracts under test.

package core

import "testing"

func TestEstimatorHotPathsDoNotAllocate(t *testing.T) {
	pool := newIDPool(t, 2, 42)
	common := pool.take(50)
	set := makeSet(t, pool, 7, 1<<10, common, []int{40, 40, 40, 40})
	bs := set.Bitmaps()
	pa, pb := SplitHalves.split(bs)
	m := set.MaxSize()
	var sink float64

	if n := testing.AllocsPerRun(100, func() {
		va0, vb0, v1, err := pointFractions(bs, pa, pb, m)
		if err != nil {
			t.Fatal(err)
		}
		sink = va0 + vb0 + v1
	}); n != 0 {
		t.Errorf("pointFractions allocated %.1f times per run, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		est, err := EstimatePointBaseline(set)
		if err != nil {
			t.Fatal(err)
		}
		sink = est
	}); n != 0 {
		t.Errorf("EstimatePointBaseline allocated %.1f times per run, want 0", n)
	}

	_ = sink
}
