package core

// Differential harness for the fused join pipeline: the materialized
// reference implementations below reproduce the pre-kernel pipelines
// verbatim (ExpandTo every record, AndAll/OrAll, Clone+And/Or), and every
// test demands that the fused estimators agree with them bit for bit —
// not approximately: the virtual-expansion fractions are exactly the
// materialized fractions, so the float64 results must be identical.
//
// The reference is also the "materialized" arm of BenchmarkJoinPoint and
// BenchmarkJoinPointToPoint.

import (
	"math"
	"math/rand"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/lpc"
	"ptm/internal/record"
	"ptm/internal/synth"
)

// materializedJoinPoint is the original JoinPoint: expand all records to
// m, AND-join each subset, AND the two joins.
func materializedJoinPoint(set *record.Set, strategy SplitStrategy) (*PointJoin, error) {
	if set.Len() < 2 {
		return nil, ErrTooFewPeriods
	}
	bs := set.Bitmaps()
	m := set.MaxSize()
	expanded := make([]*bitmap.Bitmap, len(bs))
	for i, b := range bs {
		e, err := b.ExpandTo(m)
		if err != nil {
			return nil, err
		}
		expanded[i] = e
	}
	pa, pb := strategy.split(expanded)
	ea, err := bitmap.AndAll(pa)
	if err != nil {
		return nil, err
	}
	eb, err := bitmap.AndAll(pb)
	if err != nil {
		return nil, err
	}
	estar := ea.Clone()
	if err := estar.And(eb); err != nil {
		return nil, err
	}
	return &PointJoin{M: m, T: set.Len(), Ea: ea, Eb: eb, EStar: estar}, nil
}

// materializedJoinPointToPoint is the original JoinPointToPoint: AND-join
// each location, materialize the expansion of the smaller join, OR.
func materializedJoinPointToPoint(setL, setLPrime *record.Set) (*PointToPointJoin, error) {
	if setL.Len() < 2 || setLPrime.Len() < 2 {
		return nil, ErrTooFewPeriods
	}
	if err := record.CheckAligned(setL, setLPrime); err != nil {
		return nil, err
	}
	eL, err := bitmap.AndAll(setL.Bitmaps())
	if err != nil {
		return nil, err
	}
	eLP, err := bitmap.AndAll(setLPrime.Bitmaps())
	if err != nil {
		return nil, err
	}
	swapped := false
	if eL.Size() > eLP.Size() {
		eL, eLP = eLP, eL
		swapped = true
	}
	sStar, err := eL.ExpandTo(eLP.Size())
	if err != nil {
		return nil, err
	}
	edp := sStar.Clone()
	if err := edp.Or(eLP); err != nil {
		return nil, err
	}
	return &PointToPointJoin{
		M: eL.Size(), MPrime: eLP.Size(), T: setL.Len(), Swapped: swapped,
		EStar: eL, EStarPrime: eLP, EDoublePrime: edp,
	}, nil
}

// materializedKWay is the original EstimatePointKWay join: expand all
// records, AND-join each round-robin group, AND the group joins.
func materializedKWay(set *record.Set, k int) (m int, v0 []float64, v1 float64, err error) {
	m = set.MaxSize()
	groups := make([][]*bitmap.Bitmap, k)
	for i, b := range set.Bitmaps() {
		e, err := b.ExpandTo(m)
		if err != nil {
			return 0, nil, 0, err
		}
		groups[i%k] = append(groups[i%k], e)
	}
	joins := make([]*bitmap.Bitmap, k)
	v0 = make([]float64, k)
	for i, g := range groups {
		j, err := bitmap.AndAll(g)
		if err != nil {
			return 0, nil, 0, err
		}
		joins[i] = j
		v0[i] = j.FractionZero()
	}
	estar := joins[0].Clone()
	for _, j := range joins[1:] {
		if err := estar.And(j); err != nil {
			return 0, nil, 0, err
		}
	}
	return m, v0, estar.FractionOne(), nil
}

// diffWorkloads yields point and pair workloads with deliberately mixed
// record sizes (per-period sizing) as well as the paper's uniform sizing.
func diffPointSets(t *testing.T, trials int) []*record.Set {
	t.Helper()
	var sets []*record.Set
	for i := 0; i < trials; i++ {
		g, err := synth.NewGenerator(uint64(100+i), 3)
		if err != nil {
			t.Fatal(err)
		}
		vols, err := g.Volumes(3+i%5, 200, 3000)
		if err != nil {
			t.Fatal(err)
		}
		w, err := g.Point(synth.PointConfig{
			Loc: 1, Volumes: vols, NCommon: 20 + 10*i,
			PerPeriodSizing: i%2 == 1, // odd trials: mixed sizes within the set
		})
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, w.Set)
	}
	return sets
}

func requireSameFloat(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: fused %v != materialized %v (not bit-identical)", name, got, want)
	}
}

func TestJoinPointMatchesMaterialized(t *testing.T) {
	sc := new(bitmap.JoinScratch)
	for _, set := range diffPointSets(t, 8) {
		for _, strat := range []SplitStrategy{SplitHalves, SplitInterleaved} {
			want, err := materializedJoinPoint(set, strat)
			if err != nil {
				t.Fatal(err)
			}
			for _, scratch := range []*bitmap.JoinScratch{nil, sc} {
				scratch.Reset()
				got, err := JoinPointInto(scratch, set, strat)
				if err != nil {
					t.Fatal(err)
				}
				if got.M != want.M || got.T != want.T {
					t.Fatalf("meta: got (%d,%d) want (%d,%d)", got.M, got.T, want.M, want.T)
				}
				if !got.Ea.Equal(want.Ea) || !got.Eb.Equal(want.Eb) || !got.EStar.Equal(want.EStar) {
					t.Fatal("fused JoinPoint bitmaps differ from materialized pipeline")
				}
			}
		}
	}
}

func TestEstimatePointMatchesMaterialized(t *testing.T) {
	for _, set := range diffPointSets(t, 8) {
		for _, strat := range []SplitStrategy{SplitHalves, SplitInterleaved} {
			j, err := materializedJoinPoint(set, strat)
			if err != nil {
				t.Fatal(err)
			}
			want, wantErr := estimateFromPointJoin(j)
			got, gotErr := EstimatePointOpts(set, strat)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: fused %v, materialized %v", gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			requireSameFloat(t, "Estimate", got.Estimate, want.Estimate)
			requireSameFloat(t, "Raw", got.Raw, want.Raw)
			requireSameFloat(t, "Va0", got.Va0, want.Va0)
			requireSameFloat(t, "Vb0", got.Vb0, want.Vb0)
			requireSameFloat(t, "V1", got.V1, want.V1)
			requireSameFloat(t, "Na", got.Na, want.Na)
			requireSameFloat(t, "Nb", got.Nb, want.Nb)
			if got.M != want.M || got.T != want.T {
				t.Fatalf("M/T mismatch: (%d,%d) vs (%d,%d)", got.M, got.T, want.M, want.T)
			}
		}
	}
}

func TestEstimatePointBaselineMatchesMaterialized(t *testing.T) {
	for _, set := range diffPointSets(t, 6) {
		j, err := materializedJoinPoint(set, SplitHalves)
		if err != nil {
			t.Fatal(err)
		}
		v0 := j.EStar.FractionZero()
		want, wantErr := lpc.Estimate(j.M, v0)
		got, gotErr := EstimatePointBaseline(set)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
		}
		if wantErr == nil {
			requireSameFloat(t, "baseline", got, want)
		}
	}
}

func TestEstimatePointToPointMatchesMaterialized(t *testing.T) {
	sc := new(bitmap.JoinScratch)
	for i := 0; i < 8; i++ {
		g, err := synth.NewGenerator(uint64(500+i), 3)
		if err != nil {
			t.Fatal(err)
		}
		t0 := 2 + i%4
		volsA, err := g.Volumes(t0, 200, 2000)
		if err != nil {
			t.Fatal(err)
		}
		volsB, err := g.Volumes(t0, 2000, 20000)
		if err != nil {
			t.Fatal(err)
		}
		w, err := g.Pair(synth.PairConfig{
			LocA: 1, LocB: 2, VolumesA: volsA, VolumesB: volsB,
			NCommon: 50 + 20*i, SameSize: i%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		j, err := materializedJoinPointToPoint(w.SetA, w.SetB)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := estimateFromP2PJoin(j, 3)

		// Fused join must reproduce the materialized join bit for bit.
		gotJ, err := JoinPointToPointInto(nil, w.SetA, w.SetB)
		if err != nil {
			t.Fatal(err)
		}
		if gotJ.M != j.M || gotJ.MPrime != j.MPrime || gotJ.Swapped != j.Swapped {
			t.Fatalf("join meta mismatch: %+v vs %+v", gotJ, j)
		}
		if !gotJ.EStar.Equal(j.EStar) || !gotJ.EStarPrime.Equal(j.EStarPrime) || !gotJ.EDoublePrime.Equal(j.EDoublePrime) {
			t.Fatal("fused JoinPointToPoint bitmaps differ from materialized pipeline")
		}

		// The fused estimator, with and without a reused scratch.
		for _, scratch := range []*bitmap.JoinScratch{nil, sc, sc} { // sc twice: reuse across calls
			got, gotErr := EstimatePointToPointWith(scratch, w.SetA, w.SetB, 3)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			requireSameFloat(t, "Estimate", got.Estimate, want.Estimate)
			requireSameFloat(t, "Raw", got.Raw, want.Raw)
			requireSameFloat(t, "Exact", got.Exact, want.Exact)
			requireSameFloat(t, "V0", got.V0, want.V0)
			requireSameFloat(t, "V0Prime", got.V0Prime, want.V0Prime)
			requireSameFloat(t, "V0DoublePrime", got.V0DoublePrime, want.V0DoublePrime)
			requireSameFloat(t, "N", got.N, want.N)
			requireSameFloat(t, "NPrime", got.NPrime, want.NPrime)
			if got.M != want.M || got.MPrime != want.MPrime || got.Swapped != want.Swapped {
				t.Fatalf("meta mismatch: %+v vs %+v", got, want)
			}
		}

		// Baseline AND variant.
		sStar, err := j.EStar.ExpandTo(j.MPrime)
		if err != nil {
			t.Fatal(err)
		}
		and := sStar.Clone()
		if err := and.And(j.EStarPrime); err != nil {
			t.Fatal(err)
		}
		wantB, wantBErr := lpc.Estimate(j.MPrime, and.FractionZero())
		gotB, gotBErr := EstimatePointToPointBaselineAND(w.SetA, w.SetB)
		if (wantBErr == nil) != (gotBErr == nil) {
			t.Fatalf("baseline error mismatch: %v vs %v", gotBErr, wantBErr)
		}
		if wantBErr == nil {
			requireSameFloat(t, "baselineAND", gotB, wantB)
		}
	}
}

func TestEstimatePointKWayMatchesMaterialized(t *testing.T) {
	for _, set := range diffPointSets(t, 6) {
		for k := 2; k <= set.Len(); k++ {
			m, v0, v1, err := materializedKWay(set, k)
			if err != nil {
				t.Fatal(err)
			}
			saturated := false
			for _, v := range v0 {
				if v == 0 {
					saturated = true
				}
			}
			got, gotErr := EstimatePointKWay(set, k)
			if saturated {
				if gotErr == nil {
					t.Fatal("fused k-way missed saturation")
				}
				continue
			}
			if gotErr != nil {
				t.Fatal(gotErr)
			}
			want, err := invertKWay(m, v0, v1)
			if err != nil {
				t.Fatal(err)
			}
			requireSameFloat(t, "kway Estimate", got.Estimate, want)
			requireSameFloat(t, "kway V1", got.V1, v1)
			for i := range v0 {
				requireSameFloat(t, "kway V0", got.V0[i], v0[i])
			}
		}
	}
}

// TestScratchIndependence: results computed with a heavily reused scratch
// must not depend on stale contents from earlier, larger joins.
func TestScratchIndependence(t *testing.T) {
	sc := new(bitmap.JoinScratch)
	sets := diffPointSets(t, 6)
	// Prime the scratch with the largest workload, then re-run the small
	// ones and compare against fresh computation.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		set := sets[rng.Intn(len(sets))]
		fresh, freshErr := JoinPointInto(nil, set, SplitHalves)
		sc.Reset()
		reused, reusedErr := JoinPointInto(sc, set, SplitHalves)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", reusedErr, freshErr)
		}
		if freshErr != nil {
			continue
		}
		if !reused.Ea.Equal(fresh.Ea) || !reused.Eb.Equal(fresh.Eb) || !reused.EStar.Equal(fresh.EStar) {
			t.Fatal("scratch-backed join contaminated by stale contents")
		}
	}
}
