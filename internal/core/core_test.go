package core

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// idPool hands out vehicle identities with unique IDs, deterministically
// derived from a seed.
type idPool struct {
	tb   testing.TB
	next uint64
	s    int
	seed uint64
}

func newIDPool(tb testing.TB, s int, seed uint64) *idPool {
	return &idPool{tb: tb, s: s, seed: seed}
}

func (p *idPool) take(n int) []*vhash.Identity {
	out := make([]*vhash.Identity, n)
	for i := range out {
		v, err := vhash.NewSeededIdentity(vhash.VehicleID(p.next), p.s, p.seed)
		if err != nil {
			p.tb.Fatal(err)
		}
		p.next++
		out[i] = v
	}
	return out
}

// makeSet builds a record set at loc with the given bitmap size: the common
// vehicles appear in every period, plus transientPerPeriod[j] fresh
// transient vehicles in period j.
func makeSet(tb testing.TB, pool *idPool, loc vhash.LocationID, m int, common []*vhash.Identity, transientPerPeriod []int) *record.Set {
	tb.Helper()
	recs := make([]*record.Record, len(transientPerPeriod))
	for j, nt := range transientPerPeriod {
		r, err := record.New(loc, record.PeriodID(j+1), m)
		if err != nil {
			tb.Fatal(err)
		}
		for _, v := range common {
			r.Bitmap.Set(v.Index(loc, m))
		}
		for _, v := range pool.take(nt) {
			r.Bitmap.Set(v.Index(loc, m))
		}
		recs[j] = r
	}
	set, err := record.NewSet(recs)
	if err != nil {
		tb.Fatal(err)
	}
	return set
}

func relErr(est, actual float64) float64 {
	return math.Abs(est-actual) / actual
}

func TestSplitStrategyString(t *testing.T) {
	if SplitHalves.String() != "halves" || SplitInterleaved.String() != "interleaved" {
		t.Error("unexpected strategy names")
	}
	if SplitStrategy(9).String() != "SplitStrategy(9)" {
		t.Errorf("unknown strategy String = %q", SplitStrategy(9).String())
	}
}

func TestJoinPointRequiresTwoPeriods(t *testing.T) {
	pool := newIDPool(t, 3, 1)
	set := makeSet(t, pool, 1, 64, nil, []int{5})
	if _, err := JoinPoint(set, SplitHalves); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("err = %v, want ErrTooFewPeriods", err)
	}
	if _, err := EstimatePoint(set); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("EstimatePoint err = %v", err)
	}
	if _, err := EstimatePointBaseline(set); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("EstimatePointBaseline err = %v", err)
	}
}

func TestJoinPointExpandsToMaxSize(t *testing.T) {
	loc := vhash.LocationID(3)
	r1, err := record.New(loc, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := record.New(loc, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	set, err := record.NewSet([]*record.Record{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	j, err := JoinPoint(set, SplitHalves)
	if err != nil {
		t.Fatal(err)
	}
	if j.M != 256 || j.Ea.Size() != 256 || j.Eb.Size() != 256 || j.EStar.Size() != 256 {
		t.Errorf("join sizes: M=%d Ea=%d Eb=%d E*=%d, want 256", j.M, j.Ea.Size(), j.Eb.Size(), j.EStar.Size())
	}
	if j.T != 2 {
		t.Errorf("T = %d, want 2", j.T)
	}
}

// TestJoinPointRetainsCommonVehicles: a common vehicle's bit survives the
// full two-subset AND pipeline across mixed bitmap sizes (Section III-A).
func TestJoinPointRetainsCommonVehicles(t *testing.T) {
	pool := newIDPool(t, 3, 2)
	loc := vhash.LocationID(8)
	common := pool.take(20)
	recs := []*record.Record{}
	sizes := []int{256, 512, 1024, 512, 1024}
	for j, m := range sizes {
		r, err := record.New(loc, record.PeriodID(j+1), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			r.Bitmap.Set(v.Index(loc, m))
		}
		recs = append(recs, r)
	}
	set, err := record.NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []SplitStrategy{SplitHalves, SplitInterleaved} {
		j, err := JoinPoint(set, strat)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			if !j.EStar.Get(v.Index(loc, j.M)) {
				t.Errorf("strategy %v: common vehicle %d lost in E*", strat, v.ID())
			}
		}
	}
}

func TestSplitHalvesSizes(t *testing.T) {
	bs := make([]*bitmap.Bitmap, 5)
	for i := range bs {
		bs[i] = bitmap.MustNew(64)
	}
	a, b := SplitHalves.split(bs)
	if len(a) != 3 || len(b) != 2 {
		t.Errorf("halves split = %d/%d, want 3/2", len(a), len(b))
	}
	a, b = SplitInterleaved.split(bs)
	if len(a) != 3 || len(b) != 2 {
		t.Errorf("interleaved split = %d/%d, want 3/2", len(a), len(b))
	}
}

func TestEstimatePointAccuracy(t *testing.T) {
	pool := newIDPool(t, 3, 42)
	loc := vhash.LocationID(1)
	const (
		m       = 1 << 14 // f = 2 for ~8000 vehicles/period
		nCommon = 1000
	)
	common := pool.take(nCommon)
	set := makeSet(t, pool, loc, m, common, []int{5000, 6200, 4800, 7000, 5500})

	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Estimate, nCommon); re > 0.10 {
		t.Errorf("point estimate %v vs true %d: rel err %.3f > 0.10", res.Estimate, nCommon, re)
	}
	if res.M != m || res.T != 5 {
		t.Errorf("result M/T = %d/%d", res.M, res.T)
	}
	if res.Va0 <= 0 || res.Va0 >= 1 || res.Vb0 <= 0 || res.Vb0 >= 1 {
		t.Errorf("implausible fractions: Va0=%v Vb0=%v", res.Va0, res.Vb0)
	}
	if res.Na < float64(nCommon) || res.Nb < float64(nCommon) {
		t.Errorf("abstract counts below persistent volume: Na=%v Nb=%v", res.Na, res.Nb)
	}
}

func TestEstimatePointTwoPeriods(t *testing.T) {
	pool := newIDPool(t, 3, 7)
	common := pool.take(800)
	set := makeSet(t, pool, 2, 1<<13, common, []int{3000, 3500})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Estimate, 800); re > 0.15 {
		t.Errorf("t=2 estimate %v vs 800: rel err %.3f", res.Estimate, re)
	}
}

// TestEstimatePointBeatsBaseline mirrors Fig. 4: at small persistent
// volume the benchmark estimator (plain LPC on the full AND) overestimates
// badly; the proposed estimator does not.
func TestEstimatePointBeatsBaseline(t *testing.T) {
	pool := newIDPool(t, 3, 11)
	const nCommon = 100
	common := pool.take(nCommon)
	set := makeSet(t, pool, 4, 1<<14, common, []int{6000, 7000, 5500, 6500, 7200})

	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EstimatePointBaseline(set)
	if err != nil {
		t.Fatal(err)
	}
	reProposed, reBase := relErr(res.Estimate, nCommon), relErr(base, nCommon)
	if reProposed >= reBase {
		t.Errorf("proposed rel err %.3f not better than baseline %.3f", reProposed, reBase)
	}
	if base <= res.Estimate {
		t.Errorf("baseline %.1f should overestimate above proposed %.1f", base, res.Estimate)
	}
}

func TestEstimatePointZeroCommon(t *testing.T) {
	pool := newIDPool(t, 3, 13)
	set := makeSet(t, pool, 5, 1<<14, nil, []int{5000, 6000, 5500, 4500})
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	// With no persistent traffic the estimate must be near zero compared
	// with the per-period volumes.
	if res.Estimate > 250 {
		t.Errorf("zero-common estimate = %v, want near 0", res.Estimate)
	}
}

func TestEstimatePointSaturated(t *testing.T) {
	loc := vhash.LocationID(6)
	recs := []*record.Record{}
	for p := 1; p <= 2; p++ {
		r, err := record.New(loc, record.PeriodID(p), 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 64; i++ {
			r.Bitmap.Set(i)
		}
		recs = append(recs, r)
	}
	set, err := record.NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimatePoint(set); !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
	if _, err := EstimatePointBaseline(set); !errors.Is(err, ErrSaturated) {
		t.Errorf("baseline err = %v, want ErrSaturated", err)
	}
}

func TestEstimatePointDegenerate(t *testing.T) {
	// Two records, each with a single (different) zero bit: Va0 = Vb0 =
	// 1/64, V*1 = 62/64, so V1 + Va0 + Vb0 - 1 = 0 — outside the model.
	loc := vhash.LocationID(7)
	recs := []*record.Record{}
	for p := 1; p <= 2; p++ {
		r, err := record.New(loc, record.PeriodID(p), 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 64; i++ {
			if int(i) != p-1 { // record 1 leaves bit 0 zero, record 2 bit 1
				r.Bitmap.Set(i)
			}
		}
		recs = append(recs, r)
	}
	set, err := record.NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimatePoint(set); !errors.Is(err, ErrDegenerate) {
		t.Errorf("err = %v, want ErrDegenerate", err)
	}
}

func TestEstimateVolume(t *testing.T) {
	pool := newIDPool(t, 3, 17)
	const n = 4000
	r, err := record.New(9, 1, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pool.take(n) {
		r.Bitmap.Set(v.Index(9, r.Size()))
	}
	got, err := EstimateVolume(r)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(got, n); re > 0.05 {
		t.Errorf("volume estimate %v vs %d: rel err %.3f", got, n, re)
	}
	if _, err := EstimateVolume(&record.Record{}); err == nil {
		t.Error("nil-bitmap record accepted")
	}
}

// TestEq12FormulaRegression pins the estimator to a hand-computed
// instance of Eq. (12): n̂* = [ln Va0 + ln Vb0 − ln(V1+Va0+Vb0−1)] / ln(1−1/m).
func TestEq12FormulaRegression(t *testing.T) {
	loc := vhash.LocationID(99)
	const m = 64
	// Craft two records with known joined fractions. Πa = {r1}, Πb = {r2}.
	r1, err := record.New(loc, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := record.New(loc, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	// r1: bits 0..15 set  -> Va0 = 48/64 = 0.75
	// r2: bits 8..31 set  -> Vb0 = 40/64 = 0.625
	// AND: bits 8..15     -> V1  = 8/64  = 0.125
	for i := uint64(0); i < 16; i++ {
		r1.Bitmap.Set(i)
	}
	for i := uint64(8); i < 32; i++ {
		r2.Bitmap.Set(i)
	}
	set, err := record.NewSet([]*record.Record{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	want := (math.Log(0.75) + math.Log(0.625) - math.Log(0.125+0.75+0.625-1)) / math.Log(1-1.0/64)
	if math.Abs(res.Raw-want) > 1e-9 {
		t.Errorf("Eq.12 = %v, want %v", res.Raw, want)
	}
	if res.Va0 != 0.75 || res.Vb0 != 0.625 || res.V1 != 0.125 {
		t.Errorf("fractions %v %v %v", res.Va0, res.Vb0, res.V1)
	}
}

// TestEq21FormulaRegression pins the point-to-point estimator to a
// hand-computed instance of Eq. (21): n̂″ = s·m′·(ln V″0 − ln V0 − ln V′0).
func TestEq21FormulaRegression(t *testing.T) {
	const (
		m      = 64
		mPrime = 128
		s      = 3
	)
	mk := func(loc vhash.LocationID, size int, setBits []uint64) *record.Set {
		var recs []*record.Record
		for p := record.PeriodID(1); p <= 2; p++ {
			r, err := record.New(loc, p, size)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range setBits {
				r.Bitmap.Set(i)
			}
			recs = append(recs, r)
		}
		set, err := record.NewSet(recs)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	// E* (size 64): bits {1, 5} -> V0 = 62/64.
	// E'* (size 128): bits {5, 70, 100} -> V0' = 125/128.
	// S* = E* replicated: {1, 5, 65, 69}; OR E'* -> {1,5,65,69,70,100}:
	// V0'' = 122/128.
	setL := mk(1, m, []uint64{1, 5})
	setLP := mk(2, mPrime, []uint64{5, 70, 100})
	res, err := EstimatePointToPoint(setL, setLP, s)
	if err != nil {
		t.Fatal(err)
	}
	v0 := 62.0 / 64
	v0p := 125.0 / 128
	v0dp := 122.0 / 128
	want := s * float64(mPrime) * (math.Log(v0dp) - math.Log(v0) - math.Log(v0p))
	if math.Abs(res.Raw-want) > 1e-9 {
		t.Errorf("Eq.21 = %v, want %v", res.Raw, want)
	}
	if res.V0 != v0 || res.V0Prime != v0p || res.V0DoublePrime != v0dp {
		t.Errorf("fractions %v %v %v", res.V0, res.V0Prime, res.V0DoublePrime)
	}
}

// --- point-to-point ---

// makePair builds aligned record sets at two locations: nCommon vehicles
// pass both locations every period; each location also sees its own fresh
// transients per period.
func makePair(tb testing.TB, pool *idPool, locA, locB vhash.LocationID, mA, mB int, nCommon int, transientsA, transientsB []int) (*record.Set, *record.Set) {
	tb.Helper()
	common := pool.take(nCommon)
	t := len(transientsA)
	recsA := make([]*record.Record, t)
	recsB := make([]*record.Record, t)
	for j := 0; j < t; j++ {
		ra, err := record.New(locA, record.PeriodID(j+1), mA)
		if err != nil {
			tb.Fatal(err)
		}
		rb, err := record.New(locB, record.PeriodID(j+1), mB)
		if err != nil {
			tb.Fatal(err)
		}
		for _, v := range common {
			ra.Bitmap.Set(v.Index(locA, mA))
			rb.Bitmap.Set(v.Index(locB, mB))
		}
		for _, v := range pool.take(transientsA[j]) {
			ra.Bitmap.Set(v.Index(locA, mA))
		}
		for _, v := range pool.take(transientsB[j]) {
			rb.Bitmap.Set(v.Index(locB, mB))
		}
		recsA[j], recsB[j] = ra, rb
	}
	setA, err := record.NewSet(recsA)
	if err != nil {
		tb.Fatal(err)
	}
	setB, err := record.NewSet(recsB)
	if err != nil {
		tb.Fatal(err)
	}
	return setA, setB
}

func TestEstimatePointToPointAccuracy(t *testing.T) {
	pool := newIDPool(t, 3, 23)
	const nCommon = 1000
	setA, setB := makePair(t, pool, 10, 11, 1<<13, 1<<15, nCommon,
		[]int{3000, 2500, 3200, 2800, 3100},
		[]int{12000, 14000, 13000, 15000, 12500})

	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Estimate, nCommon); re > 0.15 {
		t.Errorf("p2p estimate %v vs %d: rel err %.3f > 0.15", res.Estimate, nCommon, re)
	}
	if res.M != 1<<13 || res.MPrime != 1<<15 {
		t.Errorf("M/M' = %d/%d", res.M, res.MPrime)
	}
	if res.Swapped {
		t.Error("unexpected swap")
	}
	if res.S != 3 || res.T != 5 {
		t.Errorf("S/T = %d/%d", res.S, res.T)
	}
	// The paper's approximation and the exact inversion agree closely for
	// m' = 2^15.
	if math.Abs(res.Raw-res.Exact) > 0.001*math.Abs(res.Exact)+1e-9 {
		t.Errorf("approx %v deviates from exact %v", res.Raw, res.Exact)
	}
}

func TestEstimatePointToPointSwap(t *testing.T) {
	pool := newIDPool(t, 3, 29)
	const nCommon = 800
	// First location has the LARGER bitmap — join must swap.
	setA, setB := makePair(t, pool, 12, 13, 1<<15, 1<<13, nCommon,
		[]int{12000, 14000, 13000, 15000, 12500},
		[]int{3000, 2500, 3200, 2800, 3100})
	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Error("expected Swapped = true")
	}
	if res.M != 1<<13 || res.MPrime != 1<<15 {
		t.Errorf("after swap M/M' = %d/%d", res.M, res.MPrime)
	}
	if re := relErr(res.Estimate, nCommon); re > 0.15 {
		t.Errorf("swapped estimate %v vs %d: rel err %.3f", res.Estimate, nCommon, re)
	}
}

func TestEstimatePointToPointZeroCommon(t *testing.T) {
	pool := newIDPool(t, 3, 31)
	setA, setB := makePair(t, pool, 14, 15, 1<<13, 1<<13, 0,
		[]int{3000, 2500, 3200},
		[]int{2800, 3100, 2900})
	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate > 300 {
		t.Errorf("zero-common p2p estimate = %v, want near 0", res.Estimate)
	}
}

func TestEstimatePointToPointErrors(t *testing.T) {
	pool := newIDPool(t, 3, 37)
	setA, setB := makePair(t, pool, 16, 17, 1<<10, 1<<10, 10, []int{100, 100}, []int{100, 100})
	if _, err := EstimatePointToPoint(setA, setB, 0); !errors.Is(err, ErrBadS) {
		t.Errorf("s=0 err = %v", err)
	}

	// Misaligned periods.
	one := makeSet(t, pool, 18, 1<<10, nil, []int{50})
	if _, err := EstimatePointToPoint(one, setB, 3); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("t=1 err = %v", err)
	}
	three := makeSet(t, pool, 19, 1<<10, nil, []int{50, 50, 50})
	if _, err := EstimatePointToPoint(three, setB, 3); !errors.Is(err, record.ErrPeriodSkew) {
		t.Errorf("skew err = %v", err)
	}
}

// TestBaselineANDUnderestimates: the rejected AND second-level design
// loses common vehicles that picked different representative bits at the
// two locations, so it grossly underestimates (Section IV-A's rationale
// for OR).
func TestBaselineANDUnderestimates(t *testing.T) {
	pool := newIDPool(t, 3, 41)
	const nCommon = 1000
	setA, setB := makePair(t, pool, 20, 21, 1<<14, 1<<14, nCommon,
		[]int{3000, 2500, 3200, 2800, 3100},
		[]int{2800, 3100, 2900, 3300, 2700})
	res, err := EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	and, err := EstimatePointToPointBaselineAND(setA, setB)
	if err != nil {
		t.Fatal(err)
	}
	if and > res.Estimate/2 {
		t.Errorf("AND baseline %v suspiciously close to proposed %v", and, res.Estimate)
	}
	if re := relErr(res.Estimate, nCommon); re > 0.2 {
		t.Errorf("proposed rel err %.3f", re)
	}
	if reAnd := relErr(and, nCommon); reAnd < 0.4 {
		t.Errorf("AND baseline rel err %.3f unexpectedly good", reAnd)
	}
}

// --- k-way extension ---

func TestEstimatePointKWayMatchesEq12(t *testing.T) {
	pool := newIDPool(t, 3, 43)
	common := pool.take(600)
	set := makeSet(t, pool, 22, 1<<14, common, []int{5000, 6000, 5500, 6500})

	eq12, err := EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	// k=2 round-robin equals the interleaved split, so compare against
	// the interleaved closed form.
	inter, err := EstimatePointOpts(set, SplitInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	kway, err := EstimatePointKWay(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kway.Estimate-inter.Estimate) > 1e-3*(1+inter.Estimate) {
		t.Errorf("k=2 numeric %v != closed form %v", kway.Estimate, inter.Estimate)
	}
	// And all three should be decent estimates of the truth.
	for name, est := range map[string]float64{"eq12": eq12.Estimate, "inter": inter.Estimate, "kway": kway.Estimate} {
		if re := relErr(est, 600); re > 0.15 {
			t.Errorf("%s rel err %.3f", name, re)
		}
	}
}

func TestEstimatePointKWayThree(t *testing.T) {
	pool := newIDPool(t, 3, 47)
	common := pool.take(700)
	set := makeSet(t, pool, 23, 1<<14, common, []int{5000, 6000, 5500, 6500, 5200, 5800})
	res, err := EstimatePointKWay(set, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || len(res.V0) != 3 {
		t.Errorf("K=%d len(V0)=%d", res.K, len(res.V0))
	}
	if re := relErr(res.Estimate, 700); re > 0.15 {
		t.Errorf("3-way estimate %v vs 700: rel err %.3f", res.Estimate, re)
	}
}

func TestEstimatePointKWayValidation(t *testing.T) {
	pool := newIDPool(t, 3, 53)
	set := makeSet(t, pool, 24, 1<<10, nil, []int{100, 100, 100})
	if _, err := EstimatePointKWay(set, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := EstimatePointKWay(set, 4); err == nil {
		t.Error("k>t accepted")
	}
	one := makeSet(t, pool, 25, 1<<10, nil, []int{100})
	if _, err := EstimatePointKWay(one, 2); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("t=1 err = %v", err)
	}
}
