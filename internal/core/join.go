// Package core implements the paper's primary contribution: the persistent
// traffic estimators of Sections III (point) and IV (point-to-point),
// together with the bitmap-join pipelines they are derived from and the
// simpler baseline estimators the evaluation compares against.
package core

import (
	"errors"
	"fmt"

	"ptm/internal/bitmap"
	"ptm/internal/record"
)

// Estimation errors.
var (
	// ErrTooFewPeriods is returned when a persistent estimate is requested
	// over fewer than two periods; with t = 1 the problem degenerates to
	// plain volume estimation (use EstimateVolume).
	ErrTooFewPeriods = errors.New("core: persistent estimation needs at least 2 periods")
	// ErrSaturated is returned when a joined bitmap has no zero bits, so
	// the linear-counting step diverges. Increase the load factor f.
	ErrSaturated = errors.New("core: joined bitmap saturated (no zero bits)")
	// ErrDegenerate is returned when the measured bit fractions are
	// inconsistent with the probabilistic model (the log argument of the
	// estimator is non-positive). This only happens under extreme
	// saturation or corrupted records.
	ErrDegenerate = errors.New("core: measured fractions outside the estimator's domain")
	// ErrBadS is returned for non-positive representative-bit counts.
	ErrBadS = errors.New("core: s must be >= 1")
)

// SplitStrategy selects how the t expanded bitmaps Π are divided into the
// two subsets Π_a and Π_b of Section III-B. The paper uses contiguous
// halves; interleaved splitting is provided for the ablation study (it
// changes nothing statistically when periods are exchangeable, and the
// ablation bench demonstrates that).
type SplitStrategy int

const (
	// SplitHalves assigns the first ⌈t/2⌉ records to Π_a and the rest to
	// Π_b (the paper's split).
	SplitHalves SplitStrategy = iota
	// SplitInterleaved assigns even-indexed records to Π_a and odd-indexed
	// ones to Π_b.
	SplitInterleaved
)

// String implements fmt.Stringer.
func (s SplitStrategy) String() string {
	switch s {
	case SplitHalves:
		return "halves"
	case SplitInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("SplitStrategy(%d)", int(s))
	}
}

func (s SplitStrategy) split(bs []*bitmap.Bitmap) (a, b []*bitmap.Bitmap) {
	switch s {
	case SplitInterleaved:
		for i, bm := range bs {
			if i%2 == 0 {
				a = append(a, bm)
			} else {
				b = append(b, bm)
			}
		}
		return a, b
	default: // SplitHalves
		half := (len(bs) + 1) / 2
		return bs[:half], bs[half:]
	}
}

// PointJoin is the joined state of Section III-B: the AND of each subset
// and the AND of the two, all expanded to the largest size m.
type PointJoin struct {
	M      int            // largest bitmap size in Π
	T      int            // number of periods
	Ea, Eb *bitmap.Bitmap // AND-joins of Π_a and Π_b
	EStar  *bitmap.Bitmap // Ea AND Eb
}

// JoinPoint performs the two-subset AND join at the common size m. It
// requires at least two periods. The records are never materialized at
// size m: the fused kernels of internal/bitmap stream the join through
// the replication structure directly (virtual expansion, DESIGN.md §8),
// so only the three outputs are allocated.
func JoinPoint(set *record.Set, strategy SplitStrategy) (*PointJoin, error) {
	return JoinPointInto(nil, set, strategy)
}

// JoinPointInto is JoinPoint with the outputs leased from sc, so a
// steady-state loop that calls sc.Reset between queries allocates
// nothing. A nil sc allocates fresh outputs. The returned bitmaps are
// valid until the next sc.Reset.
func JoinPointInto(sc *bitmap.JoinScratch, set *record.Set, strategy SplitStrategy) (*PointJoin, error) {
	if set.Len() < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrTooFewPeriods, set.Len())
	}
	bs := set.Bitmaps()
	m := set.MaxSize()
	pa, pb := strategy.split(bs)
	ea, _, err := sc.AndAllTo(m, pa)
	if err != nil {
		return nil, fmt.Errorf("core: joining Π_a: %w", err)
	}
	eb, _, err := sc.AndAllTo(m, pb)
	if err != nil {
		return nil, fmt.Errorf("core: joining Π_b: %w", err)
	}
	estar, _, err := sc.AndAll([]*bitmap.Bitmap{ea, eb})
	if err != nil {
		return nil, fmt.Errorf("core: joining E*: %w", err)
	}
	return &PointJoin{M: m, T: set.Len(), Ea: ea, Eb: eb, EStar: estar}, nil
}

// PointToPointJoin is the two-level joined state of Section IV-A.
type PointToPointJoin struct {
	M, MPrime    int            // sizes after the per-location joins, M <= MPrime
	T            int            // number of periods
	Swapped      bool           // true if the input locations were swapped so M <= MPrime
	EStar        *bitmap.Bitmap // AND-join at the location with the smaller record size
	EStarPrime   *bitmap.Bitmap // AND-join at the other location
	EDoublePrime *bitmap.Bitmap // OR of (EStar expanded to MPrime) and EStarPrime
}

// JoinPointToPoint performs the first-level AND joins at each location
// and the second-level OR join (Section IV-A), expanding the smaller
// first-level result virtually rather than materializing it. The sets
// must cover identical period lists. If the first set's joined size
// exceeds the second's, the roles are swapped (the common-vehicle count
// is symmetric); Swapped records that.
func JoinPointToPoint(setL, setLPrime *record.Set) (*PointToPointJoin, error) {
	return JoinPointToPointInto(nil, setL, setLPrime)
}

// JoinPointToPointInto is JoinPointToPoint with outputs leased from sc;
// see JoinPointInto for the scratch discipline.
func JoinPointToPointInto(sc *bitmap.JoinScratch, setL, setLPrime *record.Set) (*PointToPointJoin, error) {
	if setL.Len() < 2 || setLPrime.Len() < 2 {
		return nil, fmt.Errorf("%w: got %d and %d", ErrTooFewPeriods, setL.Len(), setLPrime.Len())
	}
	if err := record.CheckAligned(setL, setLPrime); err != nil {
		return nil, err
	}
	eL, _, err := sc.AndAll(setL.Bitmaps())
	if err != nil {
		return nil, fmt.Errorf("core: joining records at L: %w", err)
	}
	eLP, _, err := sc.AndAll(setLPrime.Bitmaps())
	if err != nil {
		return nil, fmt.Errorf("core: joining records at L': %w", err)
	}
	swapped := false
	if eL.Size() > eLP.Size() {
		eL, eLP = eLP, eL
		swapped = true
	}
	edp, _, err := sc.OrAll([]*bitmap.Bitmap{eL, eLP})
	if err != nil {
		return nil, fmt.Errorf("core: second-level OR join: %w", err)
	}
	return &PointToPointJoin{
		M:            eL.Size(),
		MPrime:       eLP.Size(),
		T:            setL.Len(),
		Swapped:      swapped,
		EStar:        eL,
		EStarPrime:   eLP,
		EDoublePrime: edp,
	}, nil
}
