package core

// The estimate cache: memoized read side of the query plane.
//
// Records are immutable once ingested (the store only ever adds or drops
// whole records), so an estimator's output is a pure function of
// (location, period set, split parameters) — until an ingest changes
// which records the location holds. EstCache memoizes full estimator
// results behind that key, with ingest-time invalidation done by *epoch
// fencing*: the owner of the record store (internal/central) maintains a
// per-location epoch counter that it bumps on every accepted upload, and
// the epoch is part of the cache key. A stale entry is never returned —
// its key simply stops being generated — and dies by LRU eviction, so no
// ingest ever scans the cache (lazy invalidation; DESIGN.md §13).
//
// Hits are bit-identical to misses by construction: the cache stores the
// exact result struct a cold computation produced and hands back copies
// of it. Nothing is recomputed on the hit path, so the floating-point
// contract of the estimators (AndOnes evaluation order and all) is
// trivially preserved.

import (
	"container/list"
	"expvar"
	"sync"
	"sync/atomic"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Process-wide counter totals, aggregated across every EstCache ever
// constructed and published under expvar ("ptm.estcache.*"). Per-cache
// counters live on the cache (Stats); these exist so operators get the
// standard /debug/vars view without the package holding references to
// individual caches (which would leak short-lived test servers).
var (
	estExpvarOnce sync.Once

	estHitsTotal          atomic.Uint64
	estMissesTotal        atomic.Uint64
	estInvalidationsTotal atomic.Uint64
)

// publishEstCacheVars registers the expvar views exactly once, on first
// cache construction, so merely importing core never claims the names.
func publishEstCacheVars() {
	estExpvarOnce.Do(func() {
		expvar.Publish("ptm.estcache.hits", expvar.Func(func() any {
			return estHitsTotal.Load()
		}))
		expvar.Publish("ptm.estcache.misses", expvar.Func(func() any {
			return estMissesTotal.Load()
		}))
		expvar.Publish("ptm.estcache.invalidations", expvar.Func(func() any {
			return estInvalidationsTotal.Load()
		}))
	})
}

// DefaultEstCacheEntries is the LRU capacity central servers use unless
// configured otherwise: at ~200 bytes per entry it bounds the cache near
// 200 KiB while covering far more distinct (location, window) queries
// than a monitoring dashboard replays.
const DefaultEstCacheEntries = 1024

// estKind separates the two estimator families in the key space.
type estKind uint8

const (
	estKindPoint estKind = 1 + iota
	estKindP2P
)

// estKey identifies one memoizable estimator invocation. Epochs are part
// of the key: any ingest at a location bumps its epoch, so stale entries
// become unreachable instead of being hunted down. The period set enters
// as an FNV-1a hash; the entry keeps the exact periods and every hit
// re-verifies them, so a hash collision degrades to a miss, never to a
// wrong answer.
type estKey struct {
	kind           estKind
	strategy       SplitStrategy
	s              int
	t              int
	locA, locB     vhash.LocationID
	epochA, epochB uint64
	phash          uint64
}

// estEntry is one cached result (exactly one of point/p2p is set).
type estEntry struct {
	key     estKey
	periods []record.PeriodID
	point   PointResult
	p2p     PointToPointResult
}

// EstCacheStats is a snapshot of the cache's counters.
type EstCacheStats struct {
	Hits, Misses, Invalidations uint64
	Entries, Capacity           int
}

// EstCache is a bounded LRU of estimator results. A nil *EstCache is
// valid and computes every request directly, so one code path serves
// cached and uncached servers alike. All methods are safe for concurrent
// use; estimator computation happens outside the lock (two racing misses
// both compute — identical results, records being immutable — and the
// later store wins).
type EstCache struct {
	mu sync.Mutex
	//ptm:guardedby mu
	entries map[estKey]*list.Element
	//ptm:guardedby mu
	order *list.List // front = most recently used; Values are *estEntry
	cap   int

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// NewEstCache creates a cache bounded to capacity entries. A capacity
// <= 0 returns nil — the always-compute cache.
func NewEstCache(capacity int) *EstCache {
	if capacity <= 0 {
		return nil
	}
	publishEstCacheVars()
	return &EstCache{
		entries: make(map[estKey]*list.Element, capacity),
		order:   list.New(),
		cap:     capacity,
	}
}

// hashPeriods folds a set's sorted period IDs through FNV-1a. Collisions
// are tolerable (the hit path compares exact periods) but keep the
// common case one map probe.
//
//ptm:noalloc
func hashPeriods(set *record.Set) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, n := 0, set.Len(); i < n; i++ {
		p := uint32(set.PeriodAt(i))
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(p>>shift) & 0xff
			h *= prime64
		}
	}
	return h
}

// periodsMatch reports whether the entry's periods are exactly the set's.
//
//ptm:noalloc
func periodsMatch(periods []record.PeriodID, set *record.Set) bool {
	if len(periods) != set.Len() {
		return false
	}
	for i, p := range periods {
		if p != set.PeriodAt(i) {
			return false
		}
	}
	return true
}

// lookup returns the entry for key if present with exactly the given
// periods, promoting it to most recently used.
func (c *EstCache) lookup(key estKey, setA, setB *record.Set) (estEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return estEntry{}, false
	}
	e := el.Value.(*estEntry)
	if !periodsMatch(e.periods, setA) || (setB != nil && !periodsMatch(e.periods, setB)) {
		// phash collision (or aligned-in-hash-only sets): fall through to
		// a cold compute; the store will overwrite this entry.
		return estEntry{}, false
	}
	c.order.MoveToFront(el)
	return *e, true
}

// store inserts or replaces the entry for key, evicting the LRU tail
// beyond capacity.
func (c *EstCache) store(e *estEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*estEntry).key)
	}
}

// Point is EstimatePointOpts memoized under (location, epoch, periods,
// strategy). epoch must fence every ingest that can change the set the
// caller would assemble for these periods (internal/central bumps a
// per-location counter on accepted uploads, WAL replay included).
func (c *EstCache) Point(epoch uint64, set *record.Set, strategy SplitStrategy) (*PointResult, error) {
	if c == nil {
		return EstimatePointOpts(set, strategy)
	}
	key := estKey{
		kind:     estKindPoint,
		strategy: strategy,
		t:        set.Len(),
		locA:     set.Location(),
		epochA:   epoch,
		phash:    hashPeriods(set),
	}
	if e, ok := c.lookup(key, set, nil); ok {
		c.hits.Add(1)
		estHitsTotal.Add(1)
		out := e.point
		return &out, nil
	}
	c.misses.Add(1)
	estMissesTotal.Add(1)
	res, err := EstimatePointOpts(set, strategy)
	if err != nil {
		// Errors are not cached: they are cheap to rediscover and keeping
		// them out preserves "entry present ⇒ valid result".
		return nil, err
	}
	c.store(&estEntry{key: key, periods: set.Periods(), point: *res})
	return res, nil
}

// PointToPoint is EstimatePointToPoint memoized under (both locations,
// both epochs, periods, s). The location order is part of the key
// (Eq. 21 is symmetric in the result but the caller's argument order is
// preserved, matching the uncached path exactly).
func (c *EstCache) PointToPoint(epochL, epochLP uint64, setL, setLPrime *record.Set, s int) (*PointToPointResult, error) {
	if c == nil {
		return EstimatePointToPoint(setL, setLPrime, s)
	}
	key := estKey{
		kind:   estKindP2P,
		s:      s,
		t:      setL.Len(),
		locA:   setL.Location(),
		locB:   setLPrime.Location(),
		epochA: epochL,
		epochB: epochLP,
		phash:  hashPeriods(setL),
	}
	if e, ok := c.lookup(key, setL, setLPrime); ok {
		c.hits.Add(1)
		estHitsTotal.Add(1)
		out := e.p2p
		return &out, nil
	}
	c.misses.Add(1)
	estMissesTotal.Add(1)
	res, err := EstimatePointToPoint(setL, setLPrime, s)
	if err != nil {
		return nil, err
	}
	c.store(&estEntry{key: key, periods: setL.Periods(), p2p: *res})
	return res, nil
}

// NoteInvalidation records that an ingest invalidated (by epoch fencing)
// whatever entries the affected location had. Counters only; no entry is
// touched.
//
//ptm:noalloc
func (c *EstCache) NoteInvalidation() {
	if c != nil {
		c.invalidations.Add(1)
		estInvalidationsTotal.Add(1)
	}
}

// Len returns the number of live entries.
func (c *EstCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *EstCache) Stats() EstCacheStats {
	if c == nil {
		return EstCacheStats{}
	}
	c.mu.Lock()
	entries := c.order.Len()
	c.mu.Unlock()
	return EstCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       entries,
		Capacity:      c.cap,
	}
}
