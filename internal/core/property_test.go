package core

import (
	"math"
	"testing"
	"testing/quick"

	"ptm/internal/record"
	"ptm/internal/synth"
)

// Property tests over randomized workloads: structural invariants the
// estimators must satisfy for any input, not just tuned scenarios.

// TestPropertyPointEstimateBounds: for any workload, the point estimate
// is non-negative and cannot exceed the smaller abstract subset
// cardinality (a persistent vehicle is present in both subsets).
func TestPropertyPointEstimateBounds(t *testing.T) {
	f := func(seed uint64, tRaw, commonRaw uint8) bool {
		periods := 2 + int(tRaw)%8   // 2..9
		common := int(commonRaw) * 4 // 0..1020
		g, err := synth.NewGenerator(seed, 3)
		if err != nil {
			return false
		}
		vols, err := g.Volumes(periods, 2000, 10000)
		if err != nil {
			return false
		}
		if common >= 2000 {
			common = 1999
		}
		w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: vols, NCommon: common})
		if err != nil {
			return false
		}
		res, err := EstimatePoint(w.Set)
		if err != nil {
			return false
		}
		if res.Estimate < 0 {
			t.Logf("negative estimate %v", res.Estimate)
			return false
		}
		bound := math.Min(res.Na, res.Nb)
		// Numerical slack: the estimate may exceed the abstract bound by
		// sampling noise only marginally.
		if res.Estimate > bound*1.05+50 {
			t.Logf("estimate %v above bound %v", res.Estimate, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPointMonotoneInCommon: adding persistent vehicles (all else
// fixed) increases the estimate, up to sampling noise.
func TestPropertyPointMonotoneInCommon(t *testing.T) {
	f := func(seed uint64) bool {
		vols := []int{6000, 6000, 6000, 6000}
		run := func(common int) float64 {
			g, err := synth.NewGenerator(seed, 3)
			if err != nil {
				return math.NaN()
			}
			w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: vols, NCommon: common})
			if err != nil {
				return math.NaN()
			}
			res, err := EstimatePoint(w.Set)
			if err != nil {
				return math.NaN()
			}
			return res.Estimate
		}
		lo, hi := run(200), run(1600)
		return !math.IsNaN(lo) && !math.IsNaN(hi) && hi > lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyP2PSymmetry: swapping the two locations' record sets leaves
// the point-to-point estimate unchanged (the join handles ordering).
func TestPropertyP2PSymmetry(t *testing.T) {
	f := func(seed uint64, commonRaw uint8) bool {
		common := 100 + int(commonRaw)*4
		g, err := synth.NewGenerator(seed, 3)
		if err != nil {
			return false
		}
		volsA, err := g.Volumes(4, 2000, 6000)
		if err != nil {
			return false
		}
		volsB, err := g.Volumes(4, 8000, 16000)
		if err != nil {
			return false
		}
		w, err := g.Pair(synth.PairConfig{LocA: 1, LocB: 2, VolumesA: volsA, VolumesB: volsB, NCommon: common})
		if err != nil {
			return false
		}
		ab, err := EstimatePointToPoint(w.SetA, w.SetB, 3)
		if err != nil {
			return false
		}
		ba, err := EstimatePointToPoint(w.SetB, w.SetA, 3)
		if err != nil {
			return false
		}
		return math.Abs(ab.Estimate-ba.Estimate) < 1e-9*(1+ab.Estimate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPeriodOrderIrrelevant: the estimate depends on the set Π,
// not on upload order (record.NewSet sorts by period).
func TestPropertyPeriodOrderIrrelevant(t *testing.T) {
	g, err := synth.NewGenerator(77, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: []int{5000, 6000, 7000, 8000}, NCommon: 500})
	if err != nil {
		t.Fatal(err)
	}
	base, err := EstimatePoint(w.Set)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the set from records in reversed order.
	var recs []*record.Record
	bitmaps := w.Set.Bitmaps()
	periods := w.Set.Periods()
	for i := len(bitmaps) - 1; i >= 0; i-- {
		recs = append(recs, &record.Record{Location: 1, Period: periods[i], Bitmap: bitmaps[i]})
	}
	shuffled, err := record.NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimatePoint(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != base.Estimate {
		t.Errorf("order-dependent estimate: %v vs %v", got.Estimate, base.Estimate)
	}
}

// TestPropertyKWayAgreesAcrossK: on identical-size workloads the k=2 and
// k=3 estimators agree within statistical noise.
func TestPropertyKWayAgreesAcrossK(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := synth.NewGenerator(seed, 3)
		if err != nil {
			return false
		}
		vols := []int{6000, 6000, 6000, 6000, 6000, 6000}
		w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: vols, NCommon: 800})
		if err != nil {
			return false
		}
		k2, err := EstimatePointKWay(w.Set, 2)
		if err != nil {
			return false
		}
		k3, err := EstimatePointKWay(w.Set, 3)
		if err != nil {
			return false
		}
		// Both near the truth; tolerate independent noise on each.
		return math.Abs(k2.Estimate-800) < 200 && math.Abs(k3.Estimate-800) < 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
