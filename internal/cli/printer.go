// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"io"
)

// Printer writes formatted report output while tracking the first write
// error. The command tools produce multi-line reports with dozens of
// print calls; checking each fmt.Fprintf individually buries the logic,
// while ignoring them hides ENOSPC or closed-pipe failures from scripts
// that redirect reports to files. Printer keeps the call sites clean and
// satisfies the errdrop rule honestly: after the first failure it stops
// writing, and Err surfaces the failure for the command's exit status.
type Printer struct {
	w   io.Writer
	err error
}

// NewPrinter wraps w.
func NewPrinter(w io.Writer) *Printer {
	return &Printer{w: w}
}

// Printf formats to the underlying writer unless a previous write failed.
//
//ptm:sink formatting
func (p *Printer) Printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Println writes the operands followed by a newline.
//
//ptm:sink formatting
func (p *Printer) Println(args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintln(p.w, args...)
}

// Print writes the operands.
//
//ptm:sink formatting
func (p *Printer) Print(args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprint(p.w, args...)
}

// Err returns the first write error, or nil.
func (p *Printer) Err() error {
	if p.err != nil {
		return fmt.Errorf("cli: writing report: %w", p.err)
	}
	return nil
}
