module ptm

go 1.23
