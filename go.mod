module ptm

go 1.22
