package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/synth"
)

// writeSnapshot builds a two-location workload and saves it as a
// centrald snapshot.
func writeSnapshot(t *testing.T) string {
	t.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := g.Pair(synth.PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{4000, 4200, 4100, 4300},
		VolumesB: []int{8000, 8200, 8100, 8300},
		NCommon:  700,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(set *record.Set) {
		for i, b := range set.Bitmaps() {
			rec := &record.Record{Location: set.Location(), Period: set.Periods()[i], Bitmap: b}
			if err := store.Ingest(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(pair.SetA)
	ingest(pair.SetB)

	path := filepath.Join(t.TempDir(), "snap.ptm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReport(t *testing.T) {
	snap := writeSnapshot(t)
	var buf bytes.Buffer
	if err := run([]string{"-snapshot", snap, "-window", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 locations, 8 records",
		"location 1 — 4 periods",
		"location 2 — 4 periods",
		"persistent core:",
		"CI:",
		"stability (window 3):",
		"top persistent location pairs:",
		"1 <-> 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}

func TestReportErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing snapshot accepted")
	}
	if err := run([]string{"-snapshot", "/does/not/exist"}, &buf); err == nil {
		t.Error("bad snapshot path accepted")
	}
	// Corrupt snapshot.
	bad := filepath.Join(t.TempDir(), "bad.ptm")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-snapshot", bad}, &buf); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
