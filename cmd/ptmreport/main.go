// Command ptmreport turns a centrald snapshot into a human-readable
// traffic report: per-period volumes, the persistent core at every
// location (with a bootstrap confidence interval), sliding-window
// stability, and point-to-point persistent volumes between instrumented
// locations.
//
//	ptmreport -snapshot records.ptm [-s 3] [-window 3] [-level 0.95]
//
// The report answers the questions the paper motivates: how much of a
// location's traffic is a stable core, and how much persistent traffic
// each location pair contributes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"ptm/internal/central"
	"ptm/internal/cli"
	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ptmreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ptmreport", flag.ContinueOnError)
	var (
		snapshot = fs.String("snapshot", "", "centrald snapshot file (required)")
		s        = fs.Int("s", 3, "system-wide representative-bit count")
		window   = fs.Int("window", 0, "sliding-window size for the stability series (0 = off)")
		level    = fs.Float64("level", 0.95, "confidence level for persistent-core intervals")
		maxPairs = fs.Int("max-pairs", 10, "report at most this many location pairs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" {
		return fmt.Errorf("missing -snapshot")
	}
	store, err := central.NewServer(*s)
	if err != nil {
		return err
	}
	f, err := os.Open(*snapshot)
	if err != nil {
		return err
	}
	err = store.LoadFrom(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	st := store.Stats()
	p := cli.NewPrinter(out)
	p.Printf("PTM traffic report — %d locations, %d records (%s)\n\n", st.Locations, st.Records, *snapshot)
	if err := p.Err(); err != nil {
		return err
	}

	locs := store.Locations()
	for _, loc := range locs {
		if err := reportLocation(out, store, loc, *window, *level); err != nil {
			return err
		}
	}
	return reportPairs(out, store, locs, *maxPairs)
}

func reportLocation(out io.Writer, store *central.Server, loc vhash.LocationID, window int, level float64) error {
	periods := store.Periods(loc)
	rp := cli.NewPrinter(out)
	rp.Printf("location %d — %d periods\n", loc, len(periods))

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	tp := cli.NewPrinter(w)
	tp.Print("  volume")
	var meanVol float64
	for _, p := range periods {
		v, err := store.Volume(loc, p)
		if err != nil {
			return err
		}
		meanVol += v / float64(len(periods))
		tp.Printf("\tp%d: %.0f", p, v)
	}
	tp.Println()
	if err := tp.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if len(periods) >= 2 {
		res, err := store.PointPersistent(loc, periods)
		switch {
		case err == nil:
			line := fmt.Sprintf("  persistent core: %.0f (%.0f%% of mean volume)", res.Estimate, 100*res.Estimate/meanVol)
			if iv, err := core.PointConfidence(res, level, 0, 1); err == nil {
				line += fmt.Sprintf("  [%d%% CI: %.0f, %.0f]", int(level*100), iv.Lo, iv.Hi)
			}
			rp.Println(line)
		default:
			rp.Printf("  persistent core: unavailable (%v)\n", err)
		}
	}
	if window >= 2 && len(periods) >= window {
		wins, err := store.PointPersistentSliding(loc, window)
		if err != nil {
			return err
		}
		rp.Printf("  stability (window %d):", window)
		for _, win := range wins {
			rp.Printf(" %.0f", win.Estimate)
		}
		rp.Println()
	}
	rp.Println()
	return rp.Err()
}

func reportPairs(out io.Writer, store *central.Server, locs []vhash.LocationID, maxPairs int) error {
	type pairEst struct {
		a, b vhash.LocationID
		est  float64
	}
	var pairs []pairEst
	for i := 0; i < len(locs); i++ {
		for j := i + 1; j < len(locs); j++ {
			pa, pb := store.Periods(locs[i]), store.Periods(locs[j])
			common := intersectPeriods(pa, pb)
			if len(common) < 2 {
				continue
			}
			res, err := store.PointToPointPersistent(locs[i], locs[j], common)
			if err != nil {
				continue // saturated or degenerate pairs are skipped
			}
			pairs = append(pairs, pairEst{a: locs[i], b: locs[j], est: res.Estimate})
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].est > pairs[j].est })
	if len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	hp := cli.NewPrinter(out)
	hp.Println("top persistent location pairs:")
	if err := hp.Err(); err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	tp := cli.NewPrinter(w)
	for _, p := range pairs {
		tp.Printf("  %d <-> %d\t%.0f vehicles\n", p.a, p.b, p.est)
	}
	if err := tp.Err(); err != nil {
		return err
	}
	return w.Flush()
}

func intersectPeriods(a, b []record.PeriodID) []record.PeriodID {
	inA := make(map[record.PeriodID]bool, len(a))
	for _, p := range a {
		inA[p] = true
	}
	var out []record.PeriodID
	for _, p := range b {
		if inA[p] {
			out = append(out, p)
		}
	}
	return out
}
