// Command benchjson converts `go test -bench -benchmem` text output into
// a stable JSON document, so benchmark baselines can be committed and
// diffed across PRs:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one entry carrying the run count, ns/op,
// B/op, allocs/op, and any extra custom metrics. Context lines (goos,
// goarch, pkg, cpu) are attached to the entries that follow them.
//
// The document header additionally records the effective GOAMD64 level
// and whether the host CPU advertises the popcnt instruction, and every
// result with a throughput (MB/s, from b.SetBytes) gains a derived
// bytes_per_ns (≡ GB/s) field — together these make kernel baselines
// comparable across machines and against the memory-bandwidth baseline
// benchmark (BenchmarkBandwidthBaseline).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name    string  `json:"name"`
	Pkg     string  `json:"pkg,omitempty"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	BPerOp  float64 `json:"bytes_per_op"`
	Allocs  float64 `json:"allocs_per_op"`
	// BytesPerNs is derived from the MB/s throughput go test reports for
	// benchmarks that call b.SetBytes (1 MB/s = 1e-3 bytes/ns); zero when
	// the benchmark reported no throughput.
	BytesPerNs float64            `json:"bytes_per_ns,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// Params are key=value segments embedded in the benchmark name
	// (e.g. BenchmarkJoin/pagecache=warm/budget=64M-8): the workload
	// parameters that make a committed baseline row reproducible —
	// page-cache state, resident budget, operand size — surfaced as
	// structured fields so diffs can filter on them.
	Params map[string]string `json:"params,omitempty"`
}

// Doc is the top-level JSON document.
type Doc struct {
	GOOS    string `json:"goos,omitempty"`
	GOARCH  string `json:"goarch,omitempty"`
	CPU     string `json:"cpu,omitempty"`
	GOAMD64 string `json:"goamd64,omitempty"`
	// CPUPopcnt reports whether the host CPU advertises the popcnt
	// instruction (the GOAMD64=v2 baseline the fused kernels target).
	// Nil when the capability could not be determined on this platform.
	CPUPopcnt *bool   `json:"cpu_popcnt,omitempty"`
	Results   []Entry `json:"results"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.GOAMD64 = goamd64()
	doc.CPUPopcnt = cpuHasPopcnt()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads go-test benchmark output. Unrecognized lines (PASS, ok,
// test log noise) are skipped; a malformed Benchmark line is an error so
// silent data loss cannot slip into a committed baseline.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Entry{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			e.Pkg = pkg
			doc.Results = append(doc.Results, *e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine parses one result line:
//
//	BenchmarkName/sub-8   50   2724 ns/op   221 B/op   2 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix go test appends;
// it is kept, so baselines from different -cpu settings stay distinct.
func parseLine(line string) (*Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("malformed benchmark line: %q", line)
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad run count in %q: %w", line, err)
	}
	e := &Entry{Name: fields[0], Runs: runs, Params: nameParams(fields[0])}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BPerOp = v
		case "allocs/op":
			e.Allocs = v
		case "MB/s":
			// go test's throughput unit (from b.SetBytes). Keep the raw
			// metric and derive bytes/ns: 1 MB/s = 1e6 B/s = 1e-3 B/ns.
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
			e.BytesPerNs = v / 1000
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, nil
}

// nameParams extracts key=value sub-benchmark segments from a result
// name. The GOMAXPROCS suffix go test appends to the final segment
// (-8 in budget=64M-8) is stripped before the value is read; segments
// without "=" contribute nothing. Returns nil when the name carries no
// parameters, keeping params out of the JSON for plain benchmarks.
func nameParams(name string) map[string]string {
	segs := strings.Split(name, "/")
	// Strip the trailing -N (GOMAXPROCS) from the last segment only.
	last := segs[len(segs)-1]
	if i := strings.LastIndexByte(last, '-'); i > 0 {
		if _, err := strconv.Atoi(last[i+1:]); err == nil {
			segs[len(segs)-1] = last[:i]
		}
	}
	var params map[string]string
	for _, seg := range segs {
		k, v, ok := strings.Cut(seg, "=")
		if !ok || k == "" {
			continue
		}
		if params == nil {
			params = map[string]string{}
		}
		params[k] = v
	}
	return params
}

// goamd64 reports the effective GOAMD64 microarchitecture level the
// benchmarks were (presumably) built with: `go env GOAMD64` when the
// toolchain is reachable (it folds in go/env config), the environment
// variable otherwise, empty when neither answers.
func goamd64() string {
	if out, err := exec.Command("go", "env", "GOAMD64").Output(); err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return strings.TrimSpace(os.Getenv("GOAMD64"))
}

// cpuHasPopcnt probes the host CPU for the popcnt instruction via
// /proc/cpuinfo (the stdlib exposes no portable CPUID surface). Returns
// nil off Linux or when the flags line is missing.
func cpuHasPopcnt() *bool {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return nil
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "flags") {
			continue
		}
		has := false
		_, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		for _, f := range strings.Fields(rest) {
			if f == "popcnt" {
				has = true
				break
			}
		}
		return &has
	}
	return nil
}
