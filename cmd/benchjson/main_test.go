package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ptm/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJoinPoint/m=2^14/t=5/materialized-4         	      50	      5240 ns/op	    6384 B/op	       9 allocs/op
BenchmarkJoinPoint/m=2^14/t=5/fused-4                	      50	      2724 ns/op	     221 B/op	       2 allocs/op
BenchmarkCustom-4	 1000	 12.5 ns/op	 3.00 widgets/op
PASS
ok  	ptm/internal/core	2.881s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Errorf("context = %q/%q", doc.GOOS, doc.GOARCH)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results))
	}
	mat := doc.Results[0]
	if mat.Name != "BenchmarkJoinPoint/m=2^14/t=5/materialized-4" {
		t.Errorf("name = %q", mat.Name)
	}
	if mat.Pkg != "ptm/internal/core" {
		t.Errorf("pkg = %q", mat.Pkg)
	}
	if mat.Runs != 50 || mat.NsPerOp != 5240 || mat.BPerOp != 6384 || mat.Allocs != 9 {
		t.Errorf("materialized = %+v", mat)
	}
	fused := doc.Results[1]
	if fused.BPerOp != 221 || fused.Allocs != 2 {
		t.Errorf("fused = %+v", fused)
	}
	custom := doc.Results[2]
	if custom.NsPerOp != 12.5 || custom.Metrics["widgets/op"] != 3 {
		t.Errorf("custom = %+v", custom)
	}
}

func TestParseDerivesBytesPerNs(t *testing.T) {
	doc, err := parse(strings.NewReader(
		"BenchmarkAndAll/m=2^24/t=5-1 \t 100 \t 2000000 ns/op \t 12000.00 MB/s \t 0 B/op \t 0 allocs/op\n" +
			"BenchmarkNoThroughput-1 \t 100 \t 10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(doc.Results))
	}
	// 12000 MB/s = 12 bytes/ns.
	if got := doc.Results[0].BytesPerNs; got != 12 {
		t.Errorf("bytes_per_ns = %v, want 12", got)
	}
	if doc.Results[0].Metrics["MB/s"] != 12000 {
		t.Errorf("raw MB/s metric = %v", doc.Results[0].Metrics["MB/s"])
	}
	if got := doc.Results[1].BytesPerNs; got != 0 {
		t.Errorf("no-throughput bytes_per_ns = %v, want 0", got)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("some log line\nPASS\nok \tptm\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Errorf("results = %d, want 0", len(doc.Results))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX notanumber 5 ns/op\n",
		"BenchmarkX 10 5 ns/op 3\n", // odd pairing
		"BenchmarkX 10 bad ns/op\n", // bad metric value
		"BenchmarkOnlyName\n",       // nothing after the name
	} {
		if _, err := parse(strings.NewReader(bad)); err == nil {
			t.Errorf("parse(%q) should fail", bad)
		}
	}
}

func TestNameParams(t *testing.T) {
	cases := []struct {
		name string
		want map[string]string
	}{
		{"BenchmarkJoin-8", nil},
		{"BenchmarkJoin/size=64-8", map[string]string{"size": "64"}},
		{"BenchmarkColdJoin/pagecache=warm/budget=64M/m=16777216-16",
			map[string]string{"pagecache": "warm", "budget": "64M", "m": "16777216"}},
		// -N stripping applies only to the trailing GOMAXPROCS suffix,
		// not to hyphens inside values.
		{"BenchmarkX/mode=read-only-8", map[string]string{"mode": "read-only"}},
		{"BenchmarkX/plain/k=v-4", map[string]string{"k": "v"}},
		{"BenchmarkX/=bad-8", nil},
	}
	for _, c := range cases {
		got := nameParams(c.name)
		if len(got) != len(c.want) {
			t.Errorf("nameParams(%q) = %v, want %v", c.name, got, c.want)
			continue
		}
		for k, v := range c.want {
			if got[k] != v {
				t.Errorf("nameParams(%q)[%s] = %q, want %q", c.name, k, got[k], v)
			}
		}
	}
}

func TestParseEmitsParams(t *testing.T) {
	in := "pkg: ptm/internal/store\nBenchmarkColdJoin/pagecache=cold/budget=4K-8 10 5000 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("results = %+v", doc.Results)
	}
	e := doc.Results[0]
	if e.Params["pagecache"] != "cold" || e.Params["budget"] != "4K" {
		t.Errorf("params = %v", e.Params)
	}
}
