// Command ptmcluster administers a centrald cluster: it bootstraps the
// consistent-hash ring, walks members through their lifecycle
// (join -> promote, drain -> remove, failover -> revive), and reports
// replication status. All state lives in the versioned ring pushed to
// the nodes themselves — there is no coordinator process.
//
//	ptmcluster init -replicas 2 -node a=127.0.0.1:7701 -node b=127.0.0.1:7702 -node c=127.0.0.1:7703
//	ptmcluster status -seed 127.0.0.1:7701
//	ptmcluster ring -seed 127.0.0.1:7701
//	ptmcluster locate -seed 127.0.0.1:7701 -loc 42
//	ptmcluster join -seed 127.0.0.1:7701 -id d -addr 127.0.0.1:7704
//	ptmcluster wait -seed 127.0.0.1:7701
//	ptmcluster promote -seed 127.0.0.1:7701 -id d
//	ptmcluster drain -seed 127.0.0.1:7701 -id a
//	ptmcluster remove -seed 127.0.0.1:7701 -id a
//	ptmcluster failover -seed 127.0.0.1:7701 -down b
//	ptmcluster revive -seed 127.0.0.1:7701 -id b
//
// Every mutating verb fetches the current ring from -seed, applies one
// change, bumps the epoch, and pushes the result to every member
// (best-effort: a push that reaches at least one node succeeds, and the
// nodes gossip nothing — re-run the verb or `ptmcluster status` to see
// who adopted it). `wait` polls until every owning replica of every
// location reports the same record census, which is how scripts know a
// join or drain has finished re-shipping before they promote or remove.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ptm/internal/cli"
	"ptm/internal/cluster"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

const dialTimeout = 5 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ptmcluster:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: ptmcluster init|ring|status|locate|join|promote|drain|remove|failover|revive|wait [flags]")
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	out := cli.NewPrinter(w)
	verb, rest := args[0], args[1:]
	var err error
	switch verb {
	case "init":
		err = cmdInit(rest, out)
	case "ring":
		err = cmdRing(rest, out)
	case "status":
		err = cmdStatus(rest, out)
	case "locate":
		err = cmdLocate(rest, out)
	case "join", "promote", "drain", "remove", "revive":
		err = cmdMemberState(verb, rest, out)
	case "failover":
		err = cmdFailover(rest, out)
	case "wait":
		err = cmdWait(rest, out)
	default:
		return usage()
	}
	if err != nil {
		return err
	}
	return out.Err()
}

// nodeFlags collects repeated -node id=addr arguments.
type nodeFlags []cluster.Member

func (n *nodeFlags) String() string {
	parts := make([]string, len(*n))
	for i, m := range *n {
		parts[i] = m.ID + "=" + m.Addr
	}
	return strings.Join(parts, ",")
}

func (n *nodeFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok || id == "" || addr == "" {
		return fmt.Errorf("want id=addr, got %q", v)
	}
	*n = append(*n, cluster.Member{ID: id, Addr: addr, State: cluster.StateUp})
	return nil
}

func cmdInit(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster init", flag.ContinueOnError)
	replicas := fs.Int("replicas", 2, "replicas per location (R)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "ring positions per member")
	var nodes nodeFlags
	fs.Var(&nodes, "node", "member as id=addr (repeat per node)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("init needs at least one -node id=addr")
	}
	r := &cluster.Ring{Epoch: 1, Replicas: *replicas, VNodes: *vnodes, Members: nodes}
	r.SortMembers()
	if err := r.Validate(); err != nil {
		return err
	}
	return pushRing(r, out)
}

func cmdRing(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster ring", flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := fetchRing(*seed)
	if err != nil {
		return err
	}
	enc, err := cluster.EncodeRing(r)
	if err != nil {
		return err
	}
	out.Printf("%s\n", enc)
	return nil
}

func cmdStatus(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster status", flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := fetchRing(*seed)
	if err != nil {
		return err
	}
	out.Printf("ring epoch %d: %d members, R=%d, %d vnodes/member\n",
		r.Epoch, len(r.Members), r.Replicas, r.VNodes)
	for _, m := range r.Members {
		if m.State == cluster.StateLeft {
			out.Printf("  %-8s %-21s left\n", m.ID, "-")
			continue
		}
		st, err := fetchStatus(m.Addr)
		if err != nil {
			out.Printf("  %-8s %-21s %-8s unreachable: %v\n", m.ID, m.Addr, m.State, err)
			continue
		}
		out.Printf("  %-8s %-21s %-8s epoch=%d locs=%d wal=[%d,%d]\n",
			m.ID, m.Addr, st.State, st.RingEpoch, st.Locations, st.WALFirst, st.WALActive)
		for _, id := range sortedKeys(st.Peers) {
			ps := st.Peers[id]
			line := fmt.Sprintf("shipped=%d lag=%d records=%d fullsyncs=%d",
				ps.Shipped, ps.Lag, ps.Records, ps.FullSyncs)
			if ps.LastErr != "" {
				line += " err=" + ps.LastErr
			}
			out.Printf("    -> %-8s %s\n", id, line)
		}
		for _, id := range sortedKeys(st.Applied) {
			out.Printf("    <- %-8s applied=%d\n", id, st.Applied[id])
		}
	}
	if len(r.Promoted) > 0 {
		for _, down := range sortedKeys(r.Promoted) {
			out.Printf("  failover: %s -> %s\n", down, r.Promoted[down])
		}
	}
	return nil
}

func cmdLocate(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster locate", flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	loc := fs.Uint64("loc", 0, "location ID to locate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := fetchRing(*seed)
	if err != nil {
		return err
	}
	l := vhash.LocationID(*loc)
	set := r.ReplicaSet(l)
	ids := make([]string, len(set))
	for i, m := range set {
		ids[i] = fmt.Sprintf("%s(%s)", m.ID, m.State)
	}
	out.Printf("location %d: replicas [%s]\n", l, strings.Join(ids, " "))
	leader, err := r.Leader(l)
	if err != nil {
		out.Printf("location %d: no leader: %v\n", l, err)
		return nil
	}
	out.Printf("location %d: leader %s@%s\n", l, leader.ID, leader.Addr)
	return nil
}

// cmdMemberState implements the single-member lifecycle verbs. Each is
// one legal state edge; anything else is refused so an operator typo
// cannot teleport a member across its lifecycle.
func cmdMemberState(verb string, args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster "+verb, flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	id := fs.String("id", "", "member ID")
	addr := fs.String("addr", "", "new member address (join only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("%s needs -id", verb)
	}
	r, err := fetchRing(*seed)
	if err != nil {
		return err
	}
	r = r.Clone()
	m, ok := r.Member(*id)
	switch verb {
	case "join":
		if *addr == "" {
			return fmt.Errorf("join needs -addr")
		}
		if ok && m.State != cluster.StateLeft {
			return fmt.Errorf("member %q already in the ring (state %s)", *id, m.State)
		}
		if ok {
			// Rejoining tombstone: reuse the slot.
			setState(r, *id, cluster.StateJoining, *addr)
		} else {
			r.Members = append(r.Members, cluster.Member{ID: *id, Addr: *addr, State: cluster.StateJoining})
			r.SortMembers()
		}
	case "promote":
		if !ok {
			return fmt.Errorf("no member %q", *id)
		}
		if m.State != cluster.StateJoining {
			return fmt.Errorf("promote: member %q is %s, want joining (use revive for down members)", *id, m.State)
		}
		setState(r, *id, cluster.StateUp, "")
	case "drain":
		if !ok {
			return fmt.Errorf("no member %q", *id)
		}
		if m.State != cluster.StateUp {
			return fmt.Errorf("drain: member %q is %s, want up", *id, m.State)
		}
		setState(r, *id, cluster.StateDraining, "")
	case "remove":
		if !ok {
			return fmt.Errorf("no member %q", *id)
		}
		if m.State != cluster.StateDraining {
			return fmt.Errorf("remove: member %q is %s, want draining (drain first so its records re-ship)", *id, m.State)
		}
		setState(r, *id, cluster.StateLeft, "")
		delete(r.Promoted, *id)
	case "revive":
		if !ok {
			return fmt.Errorf("no member %q", *id)
		}
		if m.State != cluster.StateDown {
			return fmt.Errorf("revive: member %q is %s, want down", *id, m.State)
		}
		setState(r, *id, cluster.StateUp, "")
		delete(r.Promoted, *id)
	}
	r.Epoch++
	if err := r.Validate(); err != nil {
		return err
	}
	out.Printf("%s %s: ", verb, *id)
	return pushRing(r, out)
}

func cmdFailover(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster failover", flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	down := fs.String("down", "", "ID of the failed member")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *down == "" {
		return fmt.Errorf("failover needs -down")
	}
	r, err := fetchRing(*seed)
	if err != nil {
		return err
	}
	r = r.Clone()
	m, ok := r.Member(*down)
	if !ok {
		return fmt.Errorf("no member %q", *down)
	}
	if m.State != cluster.StateUp && m.State != cluster.StateDown {
		return fmt.Errorf("failover: member %q is %s, want up or down", *down, m.State)
	}
	setState(r, *down, cluster.StateDown, "")

	// Promote the most-caught-up survivor: the Up member that has
	// applied the furthest of the dead node's WAL segments. Survivors
	// that never heard from it count as applied=0; ties break to the
	// smallest ID so repeated runs are deterministic.
	best, bestApplied, surveyed := "", uint64(0), 0
	for _, s := range r.Members {
		if s.ID == *down || s.State != cluster.StateUp {
			continue
		}
		st, err := fetchStatus(s.Addr)
		if err != nil {
			out.Printf("warning: survivor %s@%s unreachable: %v\n", s.ID, s.Addr, err)
			continue
		}
		surveyed++
		applied := st.Applied[*down]
		if best == "" || applied > bestApplied {
			best, bestApplied = s.ID, applied
		}
	}
	if surveyed == 0 {
		return fmt.Errorf("failover: no reachable up survivor to promote")
	}
	if r.Promoted == nil {
		r.Promoted = make(map[string]string)
	}
	r.Promoted[*down] = best
	r.Epoch++
	if err := r.Validate(); err != nil {
		return err
	}
	out.Printf("failover %s: promoting %s (applied through %s's segment %d, %d survivors surveyed)\n",
		*down, best, *down, bestApplied, surveyed)
	return pushRing(r, out)
}

func cmdWait(args []string, out *cli.Printer) error {
	fs := flag.NewFlagSet("ptmcluster wait", flag.ContinueOnError)
	seed := fs.String("seed", "127.0.0.1:7701", "any cluster node address")
	timeout := fs.Duration("timeout", 60*time.Second, "give up after this long")
	interval := fs.Duration("interval", 250*time.Millisecond, "poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	deadline := time.Now().Add(*timeout)
	clean, lastDetail := 0, ""
	for {
		ok, detail, err := converged(*seed)
		if err != nil {
			ok, detail = false, err.Error()
		}
		if ok {
			// Two consecutive clean polls: the first can race an
			// in-flight shipper round that is about to add records.
			if clean++; clean >= 2 {
				out.Printf("converged: every owning replica reports an identical census\n")
				return nil
			}
		} else {
			clean, lastDetail = 0, detail
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wait: not converged after %v: %s", *timeout, lastDetail)
		}
		time.Sleep(*interval)
	}
}

// converged reports whether every location's owning replicas (joining or
// up members of its replica set) hold exactly the union of all records
// observed anywhere in the cluster for that location.
func converged(seed string) (bool, string, error) {
	r, err := fetchRing(seed)
	if err != nil {
		return false, "", err
	}
	type census map[vhash.LocationID]map[record.PeriodID]bool
	censuses := make(map[string]census)
	for _, m := range r.Members {
		switch m.State {
		case cluster.StateDown, cluster.StateLeft:
			continue
		}
		c, err := memberCensus(m.Addr)
		if err != nil {
			return false, "", fmt.Errorf("census of %s@%s: %w", m.ID, m.Addr, err)
		}
		censuses[m.ID] = c
	}
	union := make(census)
	for _, c := range censuses {
		for loc, ps := range c {
			if union[loc] == nil {
				union[loc] = make(map[record.PeriodID]bool)
			}
			for p := range ps {
				union[loc][p] = true
			}
		}
	}
	for loc, want := range union {
		for _, m := range r.ReplicaSet(loc) {
			if m.State != cluster.StateJoining && m.State != cluster.StateUp {
				continue
			}
			have := censuses[m.ID][loc]
			if len(have) != len(want) {
				return false, fmt.Sprintf("loc %d: %s holds %d/%d periods", loc, m.ID, len(have), len(want)), nil
			}
			for p := range want {
				if !have[p] {
					return false, fmt.Sprintf("loc %d: %s missing period %d", loc, m.ID, p), nil
				}
			}
		}
	}
	return true, "", nil
}

func memberCensus(addr string) (map[vhash.LocationID]map[record.PeriodID]bool, error) {
	c, err := transport.Dial(addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	defer func() {
		//ptmlint:allow errdrop -- read-only poll connection
		_ = c.Close()
	}()
	locs, err := c.ListLocations()
	if err != nil {
		return nil, err
	}
	out := make(map[vhash.LocationID]map[record.PeriodID]bool, len(locs))
	for _, loc := range locs {
		ps, err := c.ListPeriods(loc)
		if err != nil {
			return nil, err
		}
		set := make(map[record.PeriodID]bool, len(ps))
		for _, p := range ps {
			set[p] = true
		}
		out[loc] = set
	}
	return out, nil
}

// setState rewrites one member in place; addr != "" also updates the
// address (rejoin after a host move).
func setState(r *cluster.Ring, id string, st cluster.State, addr string) {
	for i := range r.Members {
		if r.Members[i].ID == id {
			r.Members[i].State = st
			if addr != "" {
				r.Members[i].Addr = addr
			}
			return
		}
	}
}

func fetchRing(addr string) (*cluster.Ring, error) {
	c, err := transport.Dial(addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dialing seed %s: %w", addr, err)
	}
	defer func() {
		//ptmlint:allow errdrop -- read-only admin connection
		_ = c.Close()
	}()
	resp, err := c.Call(transport.MsgRingGet, nil, transport.MsgRing)
	if err != nil {
		return nil, fmt.Errorf("fetching ring from %s: %w", addr, err)
	}
	b, err := cluster.DecodeResponse(resp)
	if err != nil {
		return nil, fmt.Errorf("fetching ring from %s: %w", addr, err)
	}
	return cluster.DecodeRing(b)
}

func fetchStatus(addr string) (cluster.Status, error) {
	c, err := transport.Dial(addr, dialTimeout)
	if err != nil {
		return cluster.Status{}, err
	}
	defer func() {
		//ptmlint:allow errdrop -- read-only admin connection
		_ = c.Close()
	}()
	resp, err := c.Call(transport.MsgStatus, nil, transport.MsgStatusResp)
	if err != nil {
		return cluster.Status{}, err
	}
	b, err := cluster.DecodeResponse(resp)
	if err != nil {
		return cluster.Status{}, err
	}
	return cluster.DecodeStatus(b)
}

// pushRing delivers a ring to every non-left member, best-effort. At
// least one node must accept: the epoch then exists in the cluster and
// replication/retries spread the records (though not the ring itself —
// unreachable members are reported so the operator can re-push).
func pushRing(r *cluster.Ring, out *cli.Printer) error {
	enc, err := cluster.EncodeRing(r)
	if err != nil {
		return err
	}
	pushed, total := 0, 0
	for _, m := range r.Members {
		if m.State == cluster.StateLeft || m.Addr == "" {
			continue
		}
		total++
		if err := pushOne(m.Addr, enc); err != nil {
			out.Printf("warning: ring push to %s@%s failed: %v\n", m.ID, m.Addr, err)
			continue
		}
		pushed++
	}
	if pushed == 0 {
		return fmt.Errorf("ring epoch %d reached no node", r.Epoch)
	}
	out.Printf("ring epoch %d pushed to %d/%d members\n", r.Epoch, pushed, total)
	return nil
}

func pushOne(addr string, enc []byte) error {
	c, err := transport.Dial(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer func() {
		//ptmlint:allow errdrop -- one-shot admin connection
		_ = c.Close()
	}()
	resp, err := c.Call(transport.MsgRingSet, enc, transport.MsgRing)
	if err != nil {
		return err
	}
	_, err = cluster.DecodeResponse(resp)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
