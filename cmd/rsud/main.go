// Command rsud simulates one road-side unit and its radio neighborhood:
// per measurement period it beacons, collects reports from a synthetic
// vehicle population (a persistent fleet plus per-period transients) over
// a lossy DSRC channel, and uploads the resulting traffic record to
// centrald.
//
//	rsud -central 127.0.0.1:7700 -loc 1 -periods 5 -fleet 500 -transients 3000
//
// The persistent fleet re-appears every period (the ground truth for point
// persistent traffic, printed at exit); transients are fresh each period.
//
// With -spool DIR the RSU stores and forwards: a record whose upload
// fails is appended to an on-disk log instead of aborting the run, and a
// drainer retries delivery (redialing per attempt, capped exponential
// backoff) at startup and after the last period. Spooled records survive
// rsud restarts.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"ptm/internal/cli"
	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/rsu"
	"ptm/internal/transport"
	"ptm/internal/vehicle"
	"ptm/internal/vhash"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rsud:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rsud", flag.ContinueOnError)
	var (
		centralAddr = fs.String("central", "127.0.0.1:7700", "central server address")
		loc         = fs.Uint64("loc", 1, "RSU location ID")
		periods     = fs.Int("periods", 5, "measurement periods to simulate")
		fleet       = fs.Int("fleet", 500, "persistent fleet size (passes every period)")
		transients  = fs.Int("transients", 3000, "fresh transient vehicles per period")
		loss        = fs.Float64("loss", 0.0, "beacon loss probability")
		beacons     = fs.Int("beacons", 10, "beacons per period (lossy channels need several)")
		f           = fs.Float64("f", 2.0, "bitmap load factor (Eq. 2)")
		s           = fs.Int("s", 3, "representative bits per vehicle")
		seed        = fs.Uint64("seed", 1, "RNG seed")
		spoolDir    = fs.String("spool", "", "store-and-forward directory (empty: fail on upload error)")
		pace        = fs.Duration("pace", 0, "delay between periods (lets operators watch or kill mid-run)")
		drainTries  = fs.Int("drain-attempts", 0, "spool drain attempts per drain (0: default)")
		drainBase   = fs.Duration("drain-base", 0, "first spool-drain backoff delay (0: default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, fmt.Sprintf("rsud[%d]: ", *loc), log.LstdFlags)

	now := time.Now()
	authority, err := pki.NewAuthority(now, 365*24*time.Hour)
	if err != nil {
		return err
	}
	cred, err := authority.IssueRSU(vhash.LocationID(*loc), now, 365*24*time.Hour)
	if err != nil {
		return err
	}
	ch, err := dsrc.NewChannel(dsrc.Config{BeaconLoss: *loss, Seed: int64(*seed)})
	if err != nil {
		return err
	}
	unit, err := rsu.New(cred, ch, *f, nil)
	if err != nil {
		return err
	}
	up := &uploader{addr: *centralAddr}
	defer up.close()

	var spool *rsu.Spool
	backoff := rsu.Backoff{Attempts: *drainTries, Base: *drainBase}
	if *spoolDir != "" {
		if spool, err = rsu.OpenSpool(*spoolDir); err != nil {
			return err
		}
		defer spool.Close()
		// Deliver anything a previous run left behind before adding to it.
		if spool.Pending() > 0 {
			n, err := spool.DrainWithRetry(up.sendBatch, backoff)
			if err != nil {
				logger.Printf("startup drain: %d delivered, %d still spooled: %v", n, spool.Pending(), err)
			} else if n > 0 {
				logger.Printf("startup drain: delivered %d spooled records", n)
			}
		}
	} else if _, err := up.get(); err != nil {
		// No spool: keep the old fail-fast contract, including refusing
		// to start when the central server is unreachable.
		return err
	}

	newVehicle := func(id vhash.VehicleID) (*vehicle.Vehicle, error) {
		ident, err := vhash.NewSeededIdentity(id, *s, *seed)
		if err != nil {
			return nil, err
		}
		return vehicle.New(ident, authority.TrustAnchor(), nil)
	}
	persistent := make([]*vehicle.Vehicle, *fleet)
	for i := range persistent {
		if persistent[i], err = newVehicle(vhash.VehicleID(i)); err != nil {
			return err
		}
	}

	nextTransient := vhash.VehicleID(1 << 32)
	expected := float64(*fleet + *transients)
	for p := 1; p <= *periods; p++ {
		if err := unit.StartPeriod(record.PeriodID(p), expected); err != nil {
			return err
		}
		var leaves []func()
		join := func(v *vehicle.Vehicle) error {
			leave, err := v.PassThrough(ch)
			if err != nil {
				return err
			}
			leaves = append(leaves, leave)
			return nil
		}
		for _, v := range persistent {
			if err := join(v); err != nil {
				return err
			}
		}
		for i := 0; i < *transients; i++ {
			tv, err := newVehicle(nextTransient)
			if err != nil {
				return err
			}
			nextTransient++
			if err := join(tv); err != nil {
				return err
			}
		}
		for b := 0; b < *beacons; b++ {
			if err := unit.Beacon(); err != nil {
				return err
			}
		}
		for _, leave := range leaves {
			leave()
		}
		st := unit.Stats()
		rec, err := unit.EndPeriod()
		if err != nil {
			return err
		}
		disposition := "uploaded"
		if err := up.upload(rec); err != nil {
			if spool == nil || transport.IsRemote(err) {
				// Application-level rejections (duplicate, bad record)
				// would fail identically on redelivery; only transport
				// failures are worth spooling.
				return fmt.Errorf("uploading period %d: %w", p, err)
			}
			logger.Printf("period %d: upload failed (%v); spooling", p, err)
			if err := spool.Enqueue(rec); err != nil {
				return err
			}
			disposition = "spooled"
		}
		logger.Printf("period %d: m=%d reports=%d ones=%.3f %s",
			p, rec.Size(), st.ReportsSeen, rec.Bitmap.FractionOne(), disposition)
		if *pace > 0 && p < *periods {
			time.Sleep(*pace)
		}
	}
	drained := 0
	if spool != nil && spool.Pending() > 0 {
		if drained, err = spool.DrainWithRetry(up.sendBatch, backoff); err != nil {
			return fmt.Errorf("draining spool: %w (%d records still spooled)", err, spool.Pending())
		}
		logger.Printf("drained %d spooled records", drained)
	}
	chStats := ch.Stats()
	logger.Printf("done: %d periods, beacon loss %d/%d, ground-truth persistent fleet = %d",
		*periods, chStats.BeaconsLost, chStats.BeaconsSent, *fleet)
	p := cli.NewPrinter(out)
	p.Printf("location %d: uploaded %d periods; true persistent volume %d\n", *loc, *periods, *fleet)
	return p.Err()
}

// uploader lazily dials the central server and redials after a transport
// failure, so every spool-drain attempt starts on a fresh connection
// instead of a poisoned one.
type uploader struct {
	addr   string
	client *transport.Client
}

// get returns a live client, dialing if needed.
func (u *uploader) get() (*transport.Client, error) {
	if u.client == nil {
		c, err := transport.Dial(u.addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		u.client = c
	}
	return u.client, nil
}

// fail discards the connection after a transport error; the next get
// redials.
func (u *uploader) fail() {
	if u.client != nil {
		//ptmlint:allow errdrop -- the connection is already broken; close is cleanup
		_ = u.client.Close()
		u.client = nil
	}
}

func (u *uploader) upload(rec *record.Record) error {
	c, err := u.get()
	if err != nil {
		return err
	}
	if err := c.Upload(rec); err != nil {
		if !transport.IsRemote(err) {
			u.fail()
		}
		return err
	}
	return nil
}

// sendBatch is the spool drainer's delivery function.
func (u *uploader) sendBatch(recs []*record.Record) (int, error) {
	c, err := u.get()
	if err != nil {
		return 0, err
	}
	n, err := c.UploadBatch(recs)
	if err != nil && !transport.IsRemote(err) {
		u.fail()
	}
	return n, err
}

func (u *uploader) close() {
	if u.client != nil {
		//ptmlint:allow errdrop -- process exit path; nothing to do about a close error
		_ = u.client.Close()
	}
}
