// Command rsud simulates one road-side unit and its radio neighborhood:
// per measurement period it beacons, collects reports from a synthetic
// vehicle population (a persistent fleet plus per-period transients) over
// a lossy DSRC channel, and uploads the resulting traffic record to
// centrald.
//
//	rsud -central 127.0.0.1:7700 -loc 1 -periods 5 -fleet 500 -transients 3000
//
// The persistent fleet re-appears every period (the ground truth for point
// persistent traffic, printed at exit); transients are fresh each period.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"ptm/internal/cli"
	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/rsu"
	"ptm/internal/transport"
	"ptm/internal/vehicle"
	"ptm/internal/vhash"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rsud:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rsud", flag.ContinueOnError)
	var (
		centralAddr = fs.String("central", "127.0.0.1:7700", "central server address")
		loc         = fs.Uint64("loc", 1, "RSU location ID")
		periods     = fs.Int("periods", 5, "measurement periods to simulate")
		fleet       = fs.Int("fleet", 500, "persistent fleet size (passes every period)")
		transients  = fs.Int("transients", 3000, "fresh transient vehicles per period")
		loss        = fs.Float64("loss", 0.0, "beacon loss probability")
		beacons     = fs.Int("beacons", 10, "beacons per period (lossy channels need several)")
		f           = fs.Float64("f", 2.0, "bitmap load factor (Eq. 2)")
		s           = fs.Int("s", 3, "representative bits per vehicle")
		seed        = fs.Uint64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, fmt.Sprintf("rsud[%d]: ", *loc), log.LstdFlags)

	now := time.Now()
	authority, err := pki.NewAuthority(now, 365*24*time.Hour)
	if err != nil {
		return err
	}
	cred, err := authority.IssueRSU(vhash.LocationID(*loc), now, 365*24*time.Hour)
	if err != nil {
		return err
	}
	ch, err := dsrc.NewChannel(dsrc.Config{BeaconLoss: *loss, Seed: int64(*seed)})
	if err != nil {
		return err
	}
	unit, err := rsu.New(cred, ch, *f, nil)
	if err != nil {
		return err
	}
	client, err := transport.Dial(*centralAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer client.Close()

	newVehicle := func(id vhash.VehicleID) (*vehicle.Vehicle, error) {
		ident, err := vhash.NewSeededIdentity(id, *s, *seed)
		if err != nil {
			return nil, err
		}
		return vehicle.New(ident, authority.TrustAnchor(), nil)
	}
	persistent := make([]*vehicle.Vehicle, *fleet)
	for i := range persistent {
		if persistent[i], err = newVehicle(vhash.VehicleID(i)); err != nil {
			return err
		}
	}

	nextTransient := vhash.VehicleID(1 << 32)
	expected := float64(*fleet + *transients)
	for p := 1; p <= *periods; p++ {
		if err := unit.StartPeriod(record.PeriodID(p), expected); err != nil {
			return err
		}
		var leaves []func()
		join := func(v *vehicle.Vehicle) error {
			leave, err := v.PassThrough(ch)
			if err != nil {
				return err
			}
			leaves = append(leaves, leave)
			return nil
		}
		for _, v := range persistent {
			if err := join(v); err != nil {
				return err
			}
		}
		for i := 0; i < *transients; i++ {
			tv, err := newVehicle(nextTransient)
			if err != nil {
				return err
			}
			nextTransient++
			if err := join(tv); err != nil {
				return err
			}
		}
		for b := 0; b < *beacons; b++ {
			if err := unit.Beacon(); err != nil {
				return err
			}
		}
		for _, leave := range leaves {
			leave()
		}
		st := unit.Stats()
		rec, err := unit.EndPeriod()
		if err != nil {
			return err
		}
		if err := client.Upload(rec); err != nil {
			return fmt.Errorf("uploading period %d: %w", p, err)
		}
		logger.Printf("period %d: m=%d reports=%d ones=%.3f uploaded",
			p, rec.Size(), st.ReportsSeen, rec.Bitmap.FractionOne())
	}
	chStats := ch.Stats()
	logger.Printf("done: %d periods, beacon loss %d/%d, ground-truth persistent fleet = %d",
		*periods, chStats.BeaconsLost, chStats.BeaconsSent, *fleet)
	p := cli.NewPrinter(out)
	p.Printf("location %d: uploaded %d periods; true persistent volume %d\n", *loc, *periods, *fleet)
	return p.Err()
}
