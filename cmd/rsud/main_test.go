package main

import (
	"bytes"
	"math"
	"net"
	"strings"
	"testing"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
)

func TestRSUDaemonEndToEnd(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	var buf bytes.Buffer
	err = run([]string{
		"-central", ln.Addr().String(),
		"-loc", "6",
		"-periods", "3",
		"-fleet", "150",
		"-transients", "600",
		"-loss", "0.3",
		"-beacons", "15",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uploaded 3 periods") {
		t.Errorf("output: %s", buf.String())
	}
	// Records arrived and yield a sensible persistent estimate.
	got, err := store.PointPersistent(6, []record.PeriodID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got.Estimate-150) / 150; re > 0.35 {
		t.Errorf("persistent estimate %v vs fleet 150 (rel err %.3f)", got.Estimate, re)
	}
}

// TestRSUDaemonSpoolAcrossOutage: with -spool, a run against a dead
// central server keeps its records on disk, and a later run (central
// back up) delivers them before its own periods.
func TestRSUDaemonSpoolAcrossOutage(t *testing.T) {
	spoolDir := t.TempDir()

	// Phase 1: nothing listening. The run must survive the outage,
	// spool every period, and report the failed final drain.
	var buf bytes.Buffer
	err := run([]string{
		"-central", "127.0.0.1:1",
		"-loc", "3",
		"-periods", "2",
		"-fleet", "40",
		"-transients", "100",
		"-spool", spoolDir,
		"-drain-attempts", "1",
		"-drain-base", "1ms",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "draining spool") {
		t.Fatalf("outage run err = %v, want a drain failure", err)
	}

	// Phase 2: central is up. A fresh run on the same spool dir drains
	// the outage's records at startup, then uploads its own.
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	buf.Reset()
	err = run([]string{
		"-central", ln.Addr().String(),
		"-loc", "4",
		"-periods", "1",
		"-fleet", "40",
		"-transients", "100",
		"-spool", spoolDir,
		"-drain-attempts", "2",
		"-drain-base", "1ms",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Periods(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("spooled periods at loc 3 = %v, want [1 2]", got)
	}
	if got := store.Periods(4); len(got) != 1 {
		t.Fatalf("live periods at loc 4 = %v, want [1]", got)
	}
}

func TestRSUDaemonErrors(t *testing.T) {
	var buf bytes.Buffer
	// No server listening.
	if err := run([]string{"-central", "127.0.0.1:1", "-periods", "1", "-fleet", "1", "-transients", "1"}, &buf); err == nil {
		t.Error("dial failure not surfaced")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-f", "0"}, &buf); err == nil {
		t.Error("f=0 accepted")
	}
}
