// Command ptmlint runs the repo-specific static analyzers of internal/lint
// over the given packages (default ./...) and prints findings as
//
//	file:line: [rule] message
//
// with witness-path hops (for the interprocedural privflow rule) indented
// beneath the finding. It exits 0 when clean, 1 when findings exist, and
// 2 on load or usage errors. The rule set protects invariants the Go type
// system cannot see: crypto-quality randomness in privacy-critical
// packages, power-of-two bitmap sizes, lock discipline on guarded struct
// fields, handled errors, goroutine lifecycle hygiene, the paper's
// privacy boundary (whole-program privflow taint analysis: no private
// vehicle state may reach transport, records, logs, or encoders except
// through the vhash index reduction), and the concguard concurrency
// contracts (lockorder, guardedby, atomicmix, rcu: //ptm:* annotations
// on the lock-free ingest and durability planes, checked
// interprocedurally with acquisition-path witnesses), plus the perfguard
// performance contracts (noalloc, inline, bce: //ptm:noalloc,
// //ptm:inline, and //ptm:nobce annotations on hot paths, checked
// against the Go compiler's own escape-analysis, inlining, and
// bounds-check-elimination diagnostics, with escape-flow witness
// traces). Every run also audits directives: a //ptmlint:allow whose
// rule no longer fires on its line is a stale-directive finding, and a
// //ptm: comment naming no known fact kind is an unknown-directive
// finding (with a did-you-mean suggestion), so neither the escape hatch
// nor the annotation language can rot. See DESIGN.md for the full rule
// table.
//
//	ptmlint [-rules cryptorand,privflow,...] [-format text|json|sarif] [-list] [packages]
package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"

	"ptm/internal/cli"
	"ptm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ptmlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all rules)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	list := fs.Bool("list", false, "print the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, ep := cli.NewPrinter(out), cli.NewPrinter(errOut)
	if *list {
		for _, a := range lint.All() {
			p.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		p.Printf("%-18s %s\n", lint.StaleDirective,
			"(always on) //ptmlint:allow directives must still suppress a finding")
		p.Printf("%-18s %s\n", lint.UnknownDirective,
			"(always on) //ptm: directives must name a known fact kind")
		return exitCode(0, p)
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		ep.Println("ptmlint: unknown -format", *format, "(want text, json, or sarif)")
		return 2
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		ep.Println("ptmlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &lint.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		ep.Println("ptmlint:", err)
		return 2
	}
	diags := lint.RunAudited(loader.Fset(), pkgs, analyzers)
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && len(r) < len(name) {
				return r
			}
		}
		return name
	}
	switch *format {
	case "json":
		buf, err := lint.FormatJSON(diags, rel)
		if err != nil {
			ep.Println("ptmlint:", err)
			return 2
		}
		p.Printf("%s\n", buf)
	case "sarif":
		buf, err := lint.FormatSARIF(diags, analyzers, rel)
		if err != nil {
			ep.Println("ptmlint:", err)
			return 2
		}
		p.Printf("%s\n", buf)
	default:
		for _, d := range diags {
			p.Printf("%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
			for _, r := range d.Related {
				if r.Pos.Filename == "" {
					p.Printf("\t%s\n", r.Note)
					continue
				}
				p.Printf("\t%s:%d: %s\n", rel(r.Pos.Filename), r.Pos.Line, r.Note)
			}
		}
	}
	if len(diags) > 0 {
		ep.Printf("ptmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitCode(1, p)
	}
	return exitCode(0, p)
}

// exitCode degrades a successful run to status 2 when the report itself
// could not be written (e.g. a closed pipe), so scripts never mistake a
// half-printed run for a clean one.
func exitCode(code int, p *cli.Printer) int {
	if p.Err() != nil && code == 0 {
		return 2
	}
	return code
}
