// Command ptmlint runs the repo-specific static analyzers of internal/lint
// over the given packages (default ./...) and prints findings as
//
//	file:line: [rule] message
//
// It exits 0 when clean, 1 when findings exist, and 2 on load or usage
// errors. The rule set protects invariants the Go type system cannot see:
// crypto-quality randomness in privacy-critical packages, power-of-two
// bitmap sizes, lock discipline on guarded struct fields, handled errors,
// and goroutine lifecycle hygiene. See DESIGN.md for the full rule table.
//
//	ptmlint [-rules cryptorand,pow2size,...] [-list] [packages]
package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"

	"ptm/internal/cli"
	"ptm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ptmlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all rules)")
	list := fs.Bool("list", false, "print the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, ep := cli.NewPrinter(out), cli.NewPrinter(errOut)
	if *list {
		for _, a := range lint.All() {
			p.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return exitCode(0, p)
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		ep.Println("ptmlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := &lint.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		ep.Println("ptmlint:", err)
		return 2
	}
	diags := lint.Run(loader.Fset(), pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		p.Printf("%s:%d: [%s] %s\n", name, d.Pos.Line, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		ep.Printf("ptmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitCode(1, p)
	}
	return exitCode(0, p)
}

// exitCode degrades a successful run to status 2 when the report itself
// could not be written (e.g. a closed pipe), so scripts never mistake a
// half-printed run for a clean one.
func exitCode(code int, p *cli.Printer) int {
	if p.Err() != nil && code == 0 {
		return 2
	}
	return code
}
