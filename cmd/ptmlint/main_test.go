package main

import (
	"encoding/json"
	"strings"
	"testing"

	"ptm/internal/lint"
)

// fixture is a package with a known privflow finding, addressed relative
// to this package directory (go test runs with cwd = cmd/ptmlint).
const fixture = "ptm/internal/lint/testdata/src/privflow/direct"

func TestRunTextFindings(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "privflow", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[privflow]") {
		t.Errorf("text output missing rule tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "\t") || !strings.Contains(out.String(), "argument to sink") {
		t.Errorf("text output missing indented witness hops:\n%s", out.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "privflow", "-format", "json", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	var findings []struct {
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 || findings[0].Rule != "privflow" {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

func TestRunSARIFFormat(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "privflow", "-format", "sarif", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v", err)
	}
	if doc.Schema != lint.SARIFSchemaURI || doc.Version != lint.SARIFVersion {
		t.Errorf("schema/version = %q/%q", doc.Schema, doc.Version)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("SARIF runs/results missing:\n%s", out.String())
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "yaml", fixture}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown -format") {
		t.Errorf("stderr does not explain the bad flag: %s", errOut.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module")
	}
	var out, errOut strings.Builder
	code := run([]string{"ptm/..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("ptmlint over the shipped tree: exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, want := range []string{
		"privflow", "lockorder", "guardedby", "atomicmix", "rcu",
		"noalloc", "inline", "bce",
		lint.StaleDirective, lint.UnknownDirective,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunPerfguardSARIF runs the noalloc rule over its fixture and pins
// the SARIF rendering: findings carry the compiler's escape-flow witness
// as a codeFlow, the same shape CI annotation surfaces consume.
func TestRunPerfguardSARIF(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "noalloc", "-format", "sarif",
		"ptm/internal/lint/testdata/src/perfguard/noalloc"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	var doc struct {
		Runs []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				CodeFlows []struct {
					ThreadFlows []struct {
						Locations []struct {
							Location struct {
								Message *struct {
									Text string `json:"text"`
								} `json:"message"`
							} `json:"location"`
						} `json:"locations"`
					} `json:"threadFlows"`
				} `json:"codeFlows"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v", err)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("SARIF results missing:\n%s", out.String())
	}
	flows := 0
	for _, r := range doc.Runs[0].Results {
		if r.RuleID != "noalloc" {
			t.Errorf("result carries rule %q, want noalloc", r.RuleID)
		}
		for _, cf := range r.CodeFlows {
			for _, tf := range cf.ThreadFlows {
				flows += len(tf.Locations)
			}
		}
	}
	if flows == 0 {
		t.Errorf("no codeFlow witness hops in SARIF output:\n%s", out.String())
	}
}

// TestRunUnknownRule pins the -rules contract: a typo in the subset list
// must be a hard usage error, not a silently empty run.
func TestRunUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "lockorder,nosuchrule", fixture}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "nosuchrule") {
		t.Errorf("stderr does not name the unknown rule: %s", errOut.String())
	}
}

// TestRunRuleSubset runs only the concguard rules over the lockorder
// fixture and checks that subsetting works end to end: the lockorder
// finding appears and no other rule fires.
func TestRunRuleSubset(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-rules", "lockorder,guardedby,atomicmix,rcu",
		"ptm/internal/lint/testdata/src/concguard/lockorder"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[lockorder]") {
		t.Errorf("subset run missing lockorder finding:\n%s", out.String())
	}
	if strings.Contains(out.String(), "[privflow]") {
		t.Errorf("subset run executed a rule outside the subset:\n%s", out.String())
	}
}
