package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
)

func startServer(t *testing.T) (*central.Server, string) {
	t.Helper()
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return store, ln.Addr().String()
}

func TestGenerateToFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "records")
	var buf bytes.Buffer
	err := run([]string{"-out", dir, "-locA", "7", "-locB", "8", "-periods", "3", "-common", "200"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 6 records") {
		t.Errorf("output: %s", buf.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("files = %d, want 6", len(entries))
	}
	// Files are valid records.
	blob, err := os.ReadFile(filepath.Join(dir, "loc7-period1.rec"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := record.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Location != 7 || rec.Period != 1 {
		t.Errorf("record header = %v", rec)
	}
}

func TestGenerateUploadAndQuery(t *testing.T) {
	store, addr := startServer(t)
	var buf bytes.Buffer
	err := run([]string{"-central", addr, "-locA", "1", "-locB", "2", "-periods", "4", "-common", "500", "-query"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "uploaded 8 records") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "point-to-point persistent: estimated") {
		t.Errorf("missing query output: %s", out)
	}
	if got := len(store.Locations()); got != 2 {
		t.Errorf("stored locations = %d", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no -central/-out accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-common", "99999"}, &buf); err == nil {
		t.Error("common > volumes accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
