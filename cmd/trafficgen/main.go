// Command trafficgen generates synthetic two-location workloads (the
// Section VI-B model), uploads them to centrald, and optionally queries
// the estimates back to compare against ground truth:
//
//	trafficgen -central 127.0.0.1:7700 -locA 1 -locB 2 -periods 5 -common 800 -query
//
// Alternatively -out DIR writes the records to per-period files instead of
// uploading, for offline processing. With -cluster addr[,addr...] the
// uploads and queries go through the partition-aware cluster router, and
// -pace D sleeps D between record uploads — a deliberately slow drip that
// gives the cluster smoke test a window to kill a node mid-ingest.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ptm/internal/cli"
	"ptm/internal/cluster/router"
	"ptm/internal/record"
	"ptm/internal/synth"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

// uploadClient is the surface the generator needs; a direct
// transport.Client and the cluster router both provide it.
type uploadClient interface {
	Upload(*record.Record) error
	QueryPointPersistent(vhash.LocationID, []record.PeriodID) (float64, error)
	QueryPointToPointPersistent(vhash.LocationID, vhash.LocationID, []record.PeriodID) (float64, error)
	Close() error
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trafficgen", flag.ContinueOnError)
	var (
		centralAddr = fs.String("central", "", "central server address (empty with -out writes files only)")
		cSeeds      = fs.String("cluster", "", "comma-separated cluster seed addresses (overrides -central)")
		pace        = fs.Duration("pace", 0, "sleep between record uploads (lets a smoke test kill a node mid-ingest)")
		outDir      = fs.String("out", "", "directory to write record files instead of uploading")
		locA        = fs.Uint64("locA", 1, "first location ID")
		locB        = fs.Uint64("locB", 2, "second location ID")
		periods     = fs.Int("periods", 5, "measurement periods")
		common      = fs.Int("common", 800, "vehicles passing both locations every period")
		volMin      = fs.Int("vol-min", synth.DefaultVolumeMin, "per-period volume lower bound (exclusive)")
		volMax      = fs.Int("vol-max", synth.DefaultVolumeMax, "per-period volume upper bound (inclusive)")
		f           = fs.Float64("f", 2.0, "bitmap load factor")
		s           = fs.Int("s", 3, "representative bits per vehicle")
		seed        = fs.Uint64("seed", 1, "RNG seed")
		query       = fs.Bool("query", false, "after uploading, query the estimates back")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	out := cli.NewPrinter(w)
	if *centralAddr == "" && *cSeeds == "" && *outDir == "" {
		return fmt.Errorf("need -central, -cluster, and/or -out")
	}

	g, err := synth.NewGenerator(*seed, *s)
	if err != nil {
		return err
	}
	volsA, err := g.Volumes(*periods, *volMin, *volMax)
	if err != nil {
		return err
	}
	volsB, err := g.Volumes(*periods, *volMin, *volMax)
	if err != nil {
		return err
	}
	wl, err := g.Pair(synth.PairConfig{
		LocA: vhash.LocationID(*locA), LocB: vhash.LocationID(*locB),
		VolumesA: volsA, VolumesB: volsB,
		NCommon: *common, F: *f,
	})
	if err != nil {
		return err
	}

	var recs []*record.Record
	collect := func(set *record.Set) {
		for i, b := range set.Bitmaps() {
			recs = append(recs, &record.Record{
				Location: set.Location(),
				Period:   set.Periods()[i],
				Bitmap:   b,
			})
		}
	}
	collect(wl.SetA)
	collect(wl.SetB)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, rec := range recs {
			blob, err := rec.MarshalBinary()
			if err != nil {
				return err
			}
			name := filepath.Join(*outDir, fmt.Sprintf("loc%d-period%d.rec", rec.Location, rec.Period))
			if err := os.WriteFile(name, blob, 0o644); err != nil {
				return err
			}
		}
		out.Printf("wrote %d records to %s\n", len(recs), *outDir)
	}

	if *centralAddr != "" || *cSeeds != "" {
		var client uploadClient
		if *cSeeds != "" {
			client, err = router.Dial(strings.Split(*cSeeds, ","), 5*time.Second)
		} else {
			client, err = transport.Dial(*centralAddr, 5*time.Second)
		}
		if err != nil {
			return err
		}
		defer client.Close()
		for _, rec := range recs {
			if err := client.Upload(rec); err != nil {
				return fmt.Errorf("uploading loc=%d period=%d: %w", rec.Location, rec.Period, err)
			}
			if *pace > 0 {
				time.Sleep(*pace)
			}
		}
		out.Printf("uploaded %d records (locA=%d locB=%d, %d periods, true common=%d)\n",
			len(recs), *locA, *locB, *periods, *common)

		if *query {
			ps := make([]record.PeriodID, *periods)
			for i := range ps {
				ps[i] = record.PeriodID(i + 1)
			}
			pp, err := client.QueryPointPersistent(vhash.LocationID(*locA), ps)
			if err != nil {
				return err
			}
			p2p, err := client.QueryPointToPointPersistent(vhash.LocationID(*locA), vhash.LocationID(*locB), ps)
			if err != nil {
				return err
			}
			out.Printf("point persistent at %d:    estimated %.1f (true >= %d)\n", *locA, pp, *common)
			out.Printf("point-to-point persistent: estimated %.1f (true %d, rel err %.4f)\n",
				p2p, *common, abs(p2p-float64(*common))/float64(*common))
		}
	}
	return out.Err()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
