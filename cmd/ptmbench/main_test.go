package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "1.9462", "0.3935", "s=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig4Tiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig4", "-runs", "1", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4 (left plot)") || !strings.Contains(out, "Figure 4 (right plot)") {
		t.Errorf("missing panels:\n%s", out[:200])
	}
	if strings.Count(out, "\n") < 100 {
		t.Error("suspiciously short series output")
	}
}

func TestRunScatterCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-scatter-runs", "1", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "actual,estimated") {
		t.Error("missing CSV header")
	}
	if strings.Count(out, "\n") < 100 { // two panels x 50 points
		t.Error("missing scatter rows")
	}
}

func TestRunTable1Subset(t *testing.T) {
	// Full Table I is slow; the tiny-runs path still exercises the whole
	// pipeline including the same-size baseline.
	if testing.Short() {
		t.Skip("table1 is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1", "-runs", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "m'/m", "same-size (t=5)", "451000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunPrivacyEmpiricalCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "privacy", "-runs", "2000", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f,p_emp,p_theory") {
		t.Error("missing CSV header")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
