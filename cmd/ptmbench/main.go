// Command ptmbench regenerates every table and figure of the paper's
// evaluation (Section VI):
//
//	ptmbench -exp table1          # Table I  (Sioux Falls point-to-point)
//	ptmbench -exp table2          # Table II (privacy ratio sweep)
//	ptmbench -exp fig4            # Fig. 4   (point rel-err vs volume, t=5,10)
//	ptmbench -exp fig5            # Fig. 5   (scatter, f=2)
//	ptmbench -exp fig6            # Fig. 6   (scatter, f=3)
//	ptmbench -exp all             # everything
//
// The paper averages 1000 simulation runs per cell; -runs controls that
// (default 200 keeps Table I to a few minutes on a laptop while the means
// are already stable; use -runs 1000 for the paper's exact protocol).
// Output defaults to human-readable tables; -csv emits CSV series suitable
// for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"ptm/internal/cli"
	"ptm/internal/privacy"
	"ptm/internal/sim"
	"ptm/internal/trips"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ptmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ptmbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, all")
		runs       = fs.Int("runs", 200, "simulation runs per cell (paper: 1000)")
		scatter    = fs.Int("scatter-runs", 1, "measurements per sweep position in scatter figures")
		seed       = fs.Uint64("seed", 1, "base RNG seed")
		workers    = fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ptmbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocation records
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "ptmbench: memprofile:", err)
			}
		}()
	}
	opts := sim.Options{Runs: *runs, Seed: *seed, Workers: *workers}

	experiments := strings.Split(*exp, ",")
	if *exp == "all" {
		experiments = []string{"table2", "privacy", "fig4", "fig5", "fig6", "table1"}
	}
	for _, e := range experiments {
		name := strings.TrimSpace(e)
		run := func() error {
			switch name {
			case "table1":
				return runTable1(out, opts, *csv)
			case "table2":
				return runTable2(out, *csv)
			case "fig4":
				return runFig4(out, opts, *csv)
			case "fig5":
				return runScatter(out, "Figure 5", 2.0, sim.Options{Runs: *scatter, Seed: *seed, Workers: *workers, F: 2}, *csv)
			case "fig6":
				return runScatter(out, "Figure 6", 3.0, sim.Options{Runs: *scatter, Seed: *seed, Workers: *workers, F: 3}, *csv)
			case "privacy":
				return runPrivacyEmpirical(out, sim.Options{Runs: max(*runs, 20000), Seed: *seed, Workers: *workers}, *csv)
			default:
				return fmt.Errorf("unknown experiment %q", e)
			}
		}
		if err := timed(name, run); err != nil {
			return err
		}
	}
	return nil
}

// timed runs one experiment and reports wall clock and allocation totals
// on stderr. Table and figure output goes to stdout only, so redirected
// results files stay byte-identical run to run.
func timed(name string, fn func() error) error {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Fprintf(os.Stderr, "ptmbench: %-8s wall=%-12s allocs=%-12d bytes=%d\n",
		name, elapsed.Round(time.Millisecond),
		after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc)
	return err
}

func runTable1(out io.Writer, opts sim.Options, csv bool) error {
	p := cli.NewPrinter(out)
	p.Printf("# Table I: relative error of point-to-point persistent traffic estimation, Sioux Falls (runs=%d, s=3, f=2)\n", opts.Runs)
	tab := trips.NewSiouxFalls()
	res, err := sim.RunTable1(tab, nil, nil, opts)
	if err != nil {
		return err
	}
	if csv {
		p.Println("L,n,m,m_ratio,n_common,relerr_t3,relerr_t5,relerr_t7,relerr_t10,same_size_t5")
		for _, c := range res.Columns {
			p.Printf("%d,%.0f,%d,%d,%.0f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
				c.L, c.N, c.M, c.MRatio, c.NCommon,
				c.RelErrByT[3], c.RelErrByT[5], c.RelErrByT[7], c.RelErrByT[10], c.SameSizeRelErr)
		}
		return p.Err()
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	tp := cli.NewPrinter(w)
	row := func(name string, f func(c sim.Table1Column) string) {
		tp.Printf("%s", name)
		for _, c := range res.Columns {
			tp.Printf("\t%s", f(c))
		}
		tp.Println()
	}
	row("L", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.L) })
	row("n", func(c sim.Table1Column) string { return fmt.Sprintf("%.0f", c.N) })
	row("m", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.M) })
	row("m'/m", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.MRatio) })
	row("n''", func(c sim.Table1Column) string { return fmt.Sprintf("%.0f", c.NCommon) })
	for _, t := range res.Ts {
		t := t
		row(fmt.Sprintf("rel err (t=%d)", t), func(c sim.Table1Column) string {
			return fmt.Sprintf("%.4f", c.RelErrByT[t])
		})
	}
	row("same-size (t=5)", func(c sim.Table1Column) string { return fmt.Sprintf("%.4f", c.SameSizeRelErr) })
	if err := tp.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	p.Printf("n' = %.0f at L' = %d, m' = %d\n\n", res.NPrime, trips.LPrime, res.MPrime)
	return p.Err()
}

func runTable2(out io.Writer, csv bool) error {
	p := cli.NewPrinter(out)
	p.Println("# Table II: probabilistic noise-to-information ratio and noise p")
	if csv {
		p.Println("s,f,ratio,noise")
		for _, s := range privacy.TableIISs {
			for _, f := range privacy.TableIIFs {
				pr, err := privacy.Evaluate(f, s)
				if err != nil {
					return err
				}
				p.Printf("%d,%.1f,%.4f,%.4f\n", s, f, pr.Ratio, pr.Noise)
			}
		}
		return p.Err()
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	tp := cli.NewPrinter(w)
	tp.Print("s\\f")
	for _, f := range privacy.TableIIFs {
		tp.Printf("\tf=%.1f", f)
	}
	tp.Println()
	for _, s := range privacy.TableIISs {
		tp.Printf("s=%d", s)
		for _, f := range privacy.TableIIFs {
			pr, err := privacy.Evaluate(f, s)
			if err != nil {
				return err
			}
			tp.Printf("\t%.4f", pr.Ratio)
		}
		tp.Println()
	}
	tp.Print("p")
	for _, f := range privacy.TableIIFs {
		pr, err := privacy.Evaluate(f, 2)
		if err != nil {
			return err
		}
		tp.Printf("\t%.4f", pr.Noise)
	}
	tp.Println()
	if err := tp.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	p.Println()
	return p.Err()
}

func runFig4(out io.Writer, opts sim.Options, csv bool) error {
	p := cli.NewPrinter(out)
	for _, t := range []int{5, 10} {
		p.Printf("# Figure 4 (%s plot): point persistent rel err vs actual volume, t=%d (runs=%d, s=3, f=2)\n",
			map[int]string{5: "left", 10: "right"}[t], t, opts.Runs)
		pts, err := sim.RunFig4(t, opts)
		if err != nil {
			return err
		}
		if csv {
			p.Println("n_star,proposed,benchmark")
			for _, pt := range pts {
				p.Printf("%d,%.4f,%.4f\n", pt.NStar, pt.Proposed, pt.Benchmark)
			}
			continue
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		tp := cli.NewPrinter(w)
		tp.Println("n*\tproposed\tbenchmark")
		for _, pt := range pts {
			tp.Printf("%d\t%.4f\t%.4f\n", pt.NStar, pt.Proposed, pt.Benchmark)
		}
		if err := tp.Err(); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		p.Println()
	}
	return p.Err()
}

// runPrivacyEmpirical validates Section V by simulation: the measured
// tracker-success frequencies against Eq. (22)/(23) across load factors.
func runPrivacyEmpirical(out io.Writer, opts sim.Options, csv bool) error {
	p := cli.NewPrinter(out)
	p.Printf("# Empirical privacy validation (Section V), %d trials per point, s=3\n", opts.Runs)
	const mPrime = 1 << 14
	if csv {
		p.Println("f,p_emp,p_theory,hit_emp,hit_theory,ratio_emp,ratio_theory")
	} else {
		p.Println("f      p(emp)  p(thy)  p'(emp) p'(thy) ratio(emp) ratio(thy)")
	}
	for _, f := range []float64{1, 2, 3, 4} {
		nPrime := int(float64(mPrime) / f)
		res, err := sim.RunPrivacyEmpirical(nPrime, mPrime, opts)
		if err != nil {
			return err
		}
		if csv {
			p.Printf("%.1f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
				f, res.NoiseEmp, res.NoiseThy, res.HitEmp, res.HitThy, res.RatioEmp, res.RatioThy)
		} else {
			p.Printf("%-6.1f %.4f  %.4f  %.4f  %.4f  %-10.4f %.4f\n",
				f, res.NoiseEmp, res.NoiseThy, res.HitEmp, res.HitThy, res.RatioEmp, res.RatioThy)
		}
	}
	p.Println()
	return p.Err()
}

func runScatter(out io.Writer, name string, f float64, opts sim.Options, csv bool) error {
	p := cli.NewPrinter(out)
	left, err := sim.RunFigScatterPoint(5, opts)
	if err != nil {
		return err
	}
	right, err := sim.RunFigScatterP2P(5, opts)
	if err != nil {
		return err
	}
	for _, panel := range []struct {
		title string
		pts   []sim.ScatterPoint
	}{
		{name + " left (point persistent, t=5, f=" + fmt.Sprintf("%.0f", f) + ")", left},
		{name + " right (point-to-point persistent, t=5, f=" + fmt.Sprintf("%.0f", f) + ")", right},
	} {
		p.Printf("# %s: actual vs estimated\n", panel.title)
		if csv {
			p.Println("actual,estimated")
			for _, pt := range panel.pts {
				p.Printf("%.0f,%.1f\n", pt.Actual, pt.Estimated)
			}
			continue
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		tp := cli.NewPrinter(w)
		tp.Println("actual\testimated")
		for _, pt := range panel.pts {
			tp.Printf("%.0f\t%.1f\n", pt.Actual, pt.Estimated)
		}
		if err := tp.Err(); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		p.Println()
	}
	return p.Err()
}
