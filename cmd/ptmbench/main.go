// Command ptmbench regenerates every table and figure of the paper's
// evaluation (Section VI):
//
//	ptmbench -exp table1          # Table I  (Sioux Falls point-to-point)
//	ptmbench -exp table2          # Table II (privacy ratio sweep)
//	ptmbench -exp fig4            # Fig. 4   (point rel-err vs volume, t=5,10)
//	ptmbench -exp fig5            # Fig. 5   (scatter, f=2)
//	ptmbench -exp fig6            # Fig. 6   (scatter, f=3)
//	ptmbench -exp all             # everything
//
// The paper averages 1000 simulation runs per cell; -runs controls that
// (default 200 keeps Table I to a few minutes on a laptop while the means
// are already stable; use -runs 1000 for the paper's exact protocol).
// Output defaults to human-readable tables; -csv emits CSV series suitable
// for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"ptm/internal/privacy"
	"ptm/internal/sim"
	"ptm/internal/trips"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ptmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ptmbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, all")
		runs    = fs.Int("runs", 200, "simulation runs per cell (paper: 1000)")
		scatter = fs.Int("scatter-runs", 1, "measurements per sweep position in scatter figures")
		seed    = fs.Uint64("seed", 1, "base RNG seed")
		workers = fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := sim.Options{Runs: *runs, Seed: *seed, Workers: *workers}

	experiments := strings.Split(*exp, ",")
	if *exp == "all" {
		experiments = []string{"table2", "privacy", "fig4", "fig5", "fig6", "table1"}
	}
	for _, e := range experiments {
		switch strings.TrimSpace(e) {
		case "table1":
			if err := runTable1(out, opts, *csv); err != nil {
				return err
			}
		case "table2":
			if err := runTable2(out, *csv); err != nil {
				return err
			}
		case "fig4":
			if err := runFig4(out, opts, *csv); err != nil {
				return err
			}
		case "fig5":
			if err := runScatter(out, "Figure 5", 2.0, sim.Options{Runs: *scatter, Seed: *seed, Workers: *workers, F: 2}, *csv); err != nil {
				return err
			}
		case "fig6":
			if err := runScatter(out, "Figure 6", 3.0, sim.Options{Runs: *scatter, Seed: *seed, Workers: *workers, F: 3}, *csv); err != nil {
				return err
			}
		case "privacy":
			if err := runPrivacyEmpirical(out, sim.Options{Runs: max(*runs, 20000), Seed: *seed, Workers: *workers}, *csv); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	return nil
}

func runTable1(out io.Writer, opts sim.Options, csv bool) error {
	fmt.Fprintf(out, "# Table I: relative error of point-to-point persistent traffic estimation, Sioux Falls (runs=%d, s=3, f=2)\n", opts.Runs)
	tab := trips.NewSiouxFalls()
	res, err := sim.RunTable1(tab, nil, nil, opts)
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(out, "L,n,m,m_ratio,n_common,relerr_t3,relerr_t5,relerr_t7,relerr_t10,same_size_t5")
		for _, c := range res.Columns {
			fmt.Fprintf(out, "%d,%.0f,%d,%d,%.0f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
				c.L, c.N, c.M, c.MRatio, c.NCommon,
				c.RelErrByT[3], c.RelErrByT[5], c.RelErrByT[7], c.RelErrByT[10], c.SameSizeRelErr)
		}
		return nil
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	row := func(name string, f func(c sim.Table1Column) string) {
		fmt.Fprintf(w, "%s", name)
		for _, c := range res.Columns {
			fmt.Fprintf(w, "\t%s", f(c))
		}
		fmt.Fprintln(w)
	}
	row("L", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.L) })
	row("n", func(c sim.Table1Column) string { return fmt.Sprintf("%.0f", c.N) })
	row("m", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.M) })
	row("m'/m", func(c sim.Table1Column) string { return fmt.Sprintf("%d", c.MRatio) })
	row("n''", func(c sim.Table1Column) string { return fmt.Sprintf("%.0f", c.NCommon) })
	for _, t := range res.Ts {
		t := t
		row(fmt.Sprintf("rel err (t=%d)", t), func(c sim.Table1Column) string {
			return fmt.Sprintf("%.4f", c.RelErrByT[t])
		})
	}
	row("same-size (t=5)", func(c sim.Table1Column) string { return fmt.Sprintf("%.4f", c.SameSizeRelErr) })
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "n' = %.0f at L' = %d, m' = %d\n\n", res.NPrime, trips.LPrime, res.MPrime)
	return nil
}

func runTable2(out io.Writer, csv bool) error {
	fmt.Fprintln(out, "# Table II: probabilistic noise-to-information ratio and noise p")
	if csv {
		fmt.Fprintln(out, "s,f,ratio,noise")
		for _, s := range privacy.TableIISs {
			for _, f := range privacy.TableIIFs {
				p, err := privacy.Evaluate(f, s)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%d,%.1f,%.4f,%.4f\n", s, f, p.Ratio, p.Noise)
			}
		}
		return nil
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "s\\f")
	for _, f := range privacy.TableIIFs {
		fmt.Fprintf(w, "\tf=%.1f", f)
	}
	fmt.Fprintln(w)
	for _, s := range privacy.TableIISs {
		fmt.Fprintf(w, "s=%d", s)
		for _, f := range privacy.TableIIFs {
			p, err := privacy.Evaluate(f, s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.4f", p.Ratio)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "p")
	for _, f := range privacy.TableIIFs {
		p, err := privacy.Evaluate(f, 2)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\t%.4f", p.Noise)
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

func runFig4(out io.Writer, opts sim.Options, csv bool) error {
	for _, t := range []int{5, 10} {
		fmt.Fprintf(out, "# Figure 4 (%s plot): point persistent rel err vs actual volume, t=%d (runs=%d, s=3, f=2)\n",
			map[int]string{5: "left", 10: "right"}[t], t, opts.Runs)
		pts, err := sim.RunFig4(t, opts)
		if err != nil {
			return err
		}
		if csv {
			fmt.Fprintln(out, "n_star,proposed,benchmark")
			for _, p := range pts {
				fmt.Fprintf(out, "%d,%.4f,%.4f\n", p.NStar, p.Proposed, p.Benchmark)
			}
			continue
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "n*\tproposed\tbenchmark")
		for _, p := range pts {
			fmt.Fprintf(w, "%d\t%.4f\t%.4f\n", p.NStar, p.Proposed, p.Benchmark)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runPrivacyEmpirical validates Section V by simulation: the measured
// tracker-success frequencies against Eq. (22)/(23) across load factors.
func runPrivacyEmpirical(out io.Writer, opts sim.Options, csv bool) error {
	fmt.Fprintf(out, "# Empirical privacy validation (Section V), %d trials per point, s=3\n", opts.Runs)
	const mPrime = 1 << 14
	if csv {
		fmt.Fprintln(out, "f,p_emp,p_theory,hit_emp,hit_theory,ratio_emp,ratio_theory")
	} else {
		fmt.Fprintln(out, "f      p(emp)  p(thy)  p'(emp) p'(thy) ratio(emp) ratio(thy)")
	}
	for _, f := range []float64{1, 2, 3, 4} {
		nPrime := int(float64(mPrime) / f)
		res, err := sim.RunPrivacyEmpirical(nPrime, mPrime, opts)
		if err != nil {
			return err
		}
		if csv {
			fmt.Fprintf(out, "%.1f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
				f, res.NoiseEmp, res.NoiseThy, res.HitEmp, res.HitThy, res.RatioEmp, res.RatioThy)
		} else {
			fmt.Fprintf(out, "%-6.1f %.4f  %.4f  %.4f  %.4f  %-10.4f %.4f\n",
				f, res.NoiseEmp, res.NoiseThy, res.HitEmp, res.HitThy, res.RatioEmp, res.RatioThy)
		}
	}
	fmt.Fprintln(out)
	return nil
}

func runScatter(out io.Writer, name string, f float64, opts sim.Options, csv bool) error {
	left, err := sim.RunFigScatterPoint(5, opts)
	if err != nil {
		return err
	}
	right, err := sim.RunFigScatterP2P(5, opts)
	if err != nil {
		return err
	}
	for _, panel := range []struct {
		title string
		pts   []sim.ScatterPoint
	}{
		{name + " left (point persistent, t=5, f=" + fmt.Sprintf("%.0f", f) + ")", left},
		{name + " right (point-to-point persistent, t=5, f=" + fmt.Sprintf("%.0f", f) + ")", right},
	} {
		fmt.Fprintf(out, "# %s: actual vs estimated\n", panel.title)
		if csv {
			fmt.Fprintln(out, "actual,estimated")
			for _, p := range panel.pts {
				fmt.Fprintf(out, "%.0f,%.1f\n", p.Actual, p.Estimated)
			}
			continue
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "actual\testimated")
		for _, p := range panel.pts {
			fmt.Fprintf(w, "%.0f\t%.1f\n", p.Actual, p.Estimated)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
