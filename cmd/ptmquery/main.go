// Command ptmquery is the operator CLI for a running centrald:
//
//	ptmquery -central 127.0.0.1:7700 locations
//	ptmquery -central 127.0.0.1:7700 periods -loc 1
//	ptmquery -central 127.0.0.1:7700 volume -loc 1 -period 3
//	ptmquery -central 127.0.0.1:7700 point -loc 1 -periods 1,2,3,4,5
//	ptmquery -central 127.0.0.1:7700 p2p -loc 1 -loc2 2 -periods 1,2,3
//
// point and p2p report persistent traffic volumes (the number of vehicles
// present in EVERY listed period); volume reports one period's plain
// volume.
//
// With -cluster addr[,addr...] the same verbs run against a centrald
// cluster: queries are routed to partition replicas, and point-to-point
// estimates spanning two partitions are joined client-side. The output
// is bit-identical to a single-node deployment holding the same records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ptm/internal/cluster/router"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

// queryClient is the surface both transport.Client and router.Router
// provide; the verbs below are agnostic to which one serves them.
type queryClient interface {
	ListLocations() ([]vhash.LocationID, error)
	ListPeriods(vhash.LocationID) ([]record.PeriodID, error)
	QueryVolume(vhash.LocationID, record.PeriodID) (float64, error)
	QueryPointPersistent(vhash.LocationID, []record.PeriodID) (float64, error)
	QueryPointToPointPersistent(vhash.LocationID, vhash.LocationID, []record.PeriodID) (float64, error)
	Close() error
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ptmquery:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: ptmquery [-central addr] locations|periods|volume|point|p2p [flags]")
}

func run(args []string) error {
	global := flag.NewFlagSet("ptmquery", flag.ContinueOnError)
	centralAddr := global.String("central", "127.0.0.1:7700", "central server address")
	clusterSeeds := global.String("cluster", "", "comma-separated cluster seed addresses (overrides -central)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usage()
	}
	verb, verbArgs := rest[0], rest[1:]

	sub := flag.NewFlagSet(verb, flag.ContinueOnError)
	loc := sub.Uint64("loc", 0, "location ID")
	loc2 := sub.Uint64("loc2", 0, "second location ID (p2p)")
	period := sub.Uint("period", 0, "single period (volume)")
	periodsFlag := sub.String("periods", "", "comma-separated period list (point, p2p)")
	if err := sub.Parse(verbArgs); err != nil {
		return err
	}

	var client queryClient
	var err error
	if *clusterSeeds != "" {
		client, err = router.Dial(strings.Split(*clusterSeeds, ","), 5*time.Second)
	} else {
		client, err = transport.Dial(*centralAddr, 5*time.Second)
	}
	if err != nil {
		return err
	}
	defer client.Close()

	switch verb {
	case "locations":
		locs, err := client.ListLocations()
		if err != nil {
			return err
		}
		if len(locs) == 0 {
			fmt.Println("no records stored")
			return nil
		}
		for _, l := range locs {
			ps, err := client.ListPeriods(l)
			if err != nil {
				return err
			}
			fmt.Printf("location %d: %d periods %v\n", l, len(ps), ps)
		}
	case "periods":
		ps, err := client.ListPeriods(vhash.LocationID(*loc))
		if err != nil {
			return err
		}
		fmt.Printf("location %d: %v\n", *loc, ps)
	case "volume":
		v, err := client.QueryVolume(vhash.LocationID(*loc), record.PeriodID(*period))
		if err != nil {
			return err
		}
		fmt.Printf("volume at %d in period %d: %.0f vehicles\n", *loc, *period, v)
	case "point":
		ps, err := parsePeriods(*periodsFlag)
		if err != nil {
			return err
		}
		v, err := client.QueryPointPersistent(vhash.LocationID(*loc), ps)
		if err != nil {
			return err
		}
		fmt.Printf("persistent traffic at %d over periods %v: %.0f vehicles\n", *loc, ps, v)
	case "p2p":
		ps, err := parsePeriods(*periodsFlag)
		if err != nil {
			return err
		}
		v, err := client.QueryPointToPointPersistent(vhash.LocationID(*loc), vhash.LocationID(*loc2), ps)
		if err != nil {
			return err
		}
		fmt.Printf("persistent traffic between %d and %d over periods %v: %.0f vehicles\n", *loc, *loc2, ps, v)
	default:
		return usage()
	}
	return nil
}

func parsePeriods(s string) ([]record.PeriodID, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -periods (e.g. -periods 1,2,3)")
	}
	parts := strings.Split(s, ",")
	out := make([]record.PeriodID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad period %q: %w", p, err)
		}
		out = append(out, record.PeriodID(n))
	}
	return out, nil
}
