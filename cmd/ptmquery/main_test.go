package main

import (
	"net"
	"strings"
	"testing"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
)

func TestParsePeriods(t *testing.T) {
	got, err := parsePeriods("1,2, 5")
	if err != nil {
		t.Fatal(err)
	}
	want := []record.PeriodID{1, 2, 5}
	if len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Errorf("parsePeriods = %v", got)
	}
	if _, err := parsePeriods(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parsePeriods("1,x"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parsePeriods("-3"); err == nil {
		t.Error("negative accepted")
	}
}

func TestRunAgainstLiveServer(t *testing.T) {
	store, err := central.NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := record.New(4, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		rec.Bitmap.Set(i * 0x9e3779b97f4a7c15)
	}
	if err := store.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	addr := ln.Addr().String()
	if err := run([]string{"-central", addr, "locations"}); err != nil {
		t.Errorf("locations: %v", err)
	}
	if err := run([]string{"-central", addr, "volume", "-loc", "4", "-period", "1"}); err != nil {
		t.Errorf("volume: %v", err)
	}
	if err := run([]string{"-central", addr, "periods", "-loc", "4"}); err != nil {
		t.Errorf("periods: %v", err)
	}
	// Missing record -> remote error surfaces.
	err = run([]string{"-central", addr, "volume", "-loc", "9", "-period", "1"})
	if err == nil || !strings.Contains(err.Error(), "no record") {
		t.Errorf("missing record err = %v", err)
	}
	// Unknown verb.
	if err := run([]string{"-central", addr, "bogus"}); err == nil {
		t.Error("unknown verb accepted")
	}
	// No verb.
	if err := run([]string{"-central", addr}); err == nil {
		t.Error("missing verb accepted")
	}
}
