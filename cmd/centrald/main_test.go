package main

import (
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

// startDaemon runs serve() in a goroutine on ephemeral ports and returns
// the TCP address, a shutdown function, and the exit channel.
func startDaemon(t *testing.T, cfg config) (addr string, shutdown func(), done <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	cfg.listen = "127.0.0.1:0"
	cfg.ready = ready
	sigc := make(chan os.Signal, 1)
	exit := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() { exit <- serve(cfg, logger, sigc) }()
	select {
	case addr = <-ready:
	case err := <-exit:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return addr, func() { sigc <- syscall.SIGTERM }, exit
}

func TestDaemonLifecycleWithSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "records.ptm")

	// First run: ingest one record, shut down, snapshot written.
	addr, shutdown, done := startDaemon(t, config{s: 3, save: snap})
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := record.New(9, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	rec.Bitmap.Set(5)
	if err := client.Upload(rec); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("first run exit: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	// Second run: restore the snapshot, query the record back.
	addr2, shutdown2, done2 := startDaemon(t, config{s: 3, load: snap})
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := client2.ListLocations()
	if err != nil || len(locs) != 1 || locs[0] != 9 {
		t.Fatalf("restored locations = %v, %v", locs, err)
	}
	vol, err := client2.QueryVolume(9, 4)
	if err != nil || vol <= 0 {
		t.Fatalf("restored volume = %v, %v", vol, err)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("second run exit: %v", err)
	}
}

func TestDaemonHTTPAdmin(t *testing.T) {
	httpReady := make(chan string, 1)
	_, shutdown, done := startDaemon(t, config{s: 3, httpAddr: "127.0.0.1:0", httpReady: httpReady})
	defer func() {
		shutdown()
		<-done
	}()
	var httpAddr string
	select {
	case httpAddr = <-httpReady:
	case <-time.After(5 * time.Second):
		t.Fatal("http admin did not come up")
	}
	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q, %v", resp.StatusCode, body, err)
	}
}

// TestDaemonWALGracefulShutdown kills the daemon (SIGTERM) mid-ingest
// and requires the restarted daemon to replay the exact census: every
// acknowledged record present, nothing else.
func TestDaemonWALGracefulShutdown(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")

	addr, shutdown, done := startDaemon(t, config{s: 3, walDir: walDir, sync: "always", ckptEvery: 7})
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []*record.Record
	for p := 1; p <= 20; p++ {
		rec, err := record.New(vhash.LocationID(p%2+3), record.PeriodID(p), 128)
		if err != nil {
			t.Fatal(err)
		}
		rec.Bitmap.Set(uint64(p))
		if err := client.Upload(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	// SIGTERM while the client connection is still open: the daemon
	// must stop accepting, flush, checkpoint, and exit cleanly.
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("wal run exit: %v", err)
	}
	_ = client.Close()
	// A graceful shutdown checkpointed, so a checkpoint file must exist.
	matches, err := filepath.Glob(filepath.Join(walDir, "*.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint after graceful shutdown: %v %v", matches, err)
	}

	// Restart on the same directory: exact census.
	addr2, shutdown2, done2 := startDaemon(t, config{s: 3, walDir: walDir, sync: "always", ckptEvery: 7})
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	census := map[uint64][]record.PeriodID{}
	locs, err := client2.ListLocations()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, loc := range locs {
		ps, err := client2.ListPeriods(loc)
		if err != nil {
			t.Fatal(err)
		}
		census[uint64(loc)] = ps
		total += len(ps)
	}
	if total != len(want) {
		t.Fatalf("recovered %d records, want %d (census %v)", total, len(want), census)
	}
	for _, rec := range want {
		found := false
		for _, p := range census[uint64(rec.Location)] {
			found = found || p == rec.Period
		}
		if !found {
			t.Fatalf("acked record loc=%d period=%d lost across restart", rec.Location, rec.Period)
		}
	}
	// Re-uploading a recovered record must be rejected as a duplicate:
	// replay really did restore it.
	if err := client2.Upload(want[0]); !transport.IsRemote(err) {
		t.Fatalf("re-upload err = %v, want duplicate rejection", err)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("restart exit: %v", err)
	}
}

func TestDaemonWALExcludesSnapshotFlags(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	err := serve(config{s: 3, walDir: t.TempDir(), load: "x.ptm", sync: "always"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "exclusive") {
		t.Errorf("wal+load err = %v", err)
	}
	err = serve(config{s: 3, walDir: t.TempDir(), sync: "sometimes"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "sync policy") {
		t.Errorf("bad sync err = %v", err)
	}
}

func TestDaemonBadSnapshotPath(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	err := serve(config{s: 3, listen: "127.0.0.1:0", load: "/does/not/exist.ptm"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("bad load err = %v", err)
	}
}

func TestParseFlags(t *testing.T) {
	cfg := parseFlags([]string{"-listen", "1.2.3.4:9", "-s", "5", "-save", "x.ptm"})
	if cfg.listen != "1.2.3.4:9" || cfg.s != 5 || cfg.save != "x.ptm" || cfg.httpAddr != "" {
		t.Errorf("cfg = %+v", cfg)
	}
}
