package main

import (
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

// startDaemon runs serve() in a goroutine on ephemeral ports and returns
// the TCP address, a shutdown function, and the exit channel.
func startDaemon(t *testing.T, cfg config) (addr string, shutdown func(), done <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	cfg.listen = "127.0.0.1:0"
	cfg.ready = ready
	sigc := make(chan os.Signal, 1)
	exit := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() { exit <- serve(cfg, logger, sigc) }()
	select {
	case addr = <-ready:
	case err := <-exit:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not become ready")
	}
	return addr, func() { sigc <- syscall.SIGTERM }, exit
}

func TestDaemonLifecycleWithSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "records.ptm")

	// First run: ingest one record, shut down, snapshot written.
	addr, shutdown, done := startDaemon(t, config{s: 3, save: snap})
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := record.New(9, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	rec.Bitmap.Set(5)
	if err := client.Upload(rec); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("first run exit: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	// Second run: restore the snapshot, query the record back.
	addr2, shutdown2, done2 := startDaemon(t, config{s: 3, load: snap})
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := client2.ListLocations()
	if err != nil || len(locs) != 1 || locs[0] != 9 {
		t.Fatalf("restored locations = %v, %v", locs, err)
	}
	vol, err := client2.QueryVolume(9, 4)
	if err != nil || vol <= 0 {
		t.Fatalf("restored volume = %v, %v", vol, err)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("second run exit: %v", err)
	}
}

func TestDaemonHTTPAdmin(t *testing.T) {
	httpReady := make(chan string, 1)
	_, shutdown, done := startDaemon(t, config{s: 3, httpAddr: "127.0.0.1:0", httpReady: httpReady})
	defer func() {
		shutdown()
		<-done
	}()
	var httpAddr string
	select {
	case httpAddr = <-httpReady:
	case <-time.After(5 * time.Second):
		t.Fatal("http admin did not come up")
	}
	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q, %v", resp.StatusCode, body, err)
	}
}

// TestDaemonWALGracefulShutdown kills the daemon (SIGTERM) mid-ingest
// and requires the restarted daemon to replay the exact census: every
// acknowledged record present, nothing else.
func TestDaemonWALGracefulShutdown(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")

	addr, shutdown, done := startDaemon(t, config{s: 3, walDir: walDir, sync: "always", ckptEvery: 7})
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []*record.Record
	for p := 1; p <= 20; p++ {
		rec, err := record.New(vhash.LocationID(p%2+3), record.PeriodID(p), 128)
		if err != nil {
			t.Fatal(err)
		}
		rec.Bitmap.Set(uint64(p))
		if err := client.Upload(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	// SIGTERM while the client connection is still open: the daemon
	// must stop accepting, flush, checkpoint, and exit cleanly.
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("wal run exit: %v", err)
	}
	_ = client.Close()
	// A graceful shutdown checkpointed, so a checkpoint file must exist.
	matches, err := filepath.Glob(filepath.Join(walDir, "*.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint after graceful shutdown: %v %v", matches, err)
	}

	// Restart on the same directory: exact census.
	addr2, shutdown2, done2 := startDaemon(t, config{s: 3, walDir: walDir, sync: "always", ckptEvery: 7})
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	census := map[uint64][]record.PeriodID{}
	locs, err := client2.ListLocations()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, loc := range locs {
		ps, err := client2.ListPeriods(loc)
		if err != nil {
			t.Fatal(err)
		}
		census[uint64(loc)] = ps
		total += len(ps)
	}
	if total != len(want) {
		t.Fatalf("recovered %d records, want %d (census %v)", total, len(want), census)
	}
	for _, rec := range want {
		found := false
		for _, p := range census[uint64(rec.Location)] {
			found = found || p == rec.Period
		}
		if !found {
			t.Fatalf("acked record loc=%d period=%d lost across restart", rec.Location, rec.Period)
		}
	}
	// Re-uploading a recovered record must be rejected as a duplicate:
	// replay really did restore it.
	if err := client2.Upload(want[0]); !transport.IsRemote(err) {
		t.Fatalf("re-upload err = %v, want duplicate rejection", err)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("restart exit: %v", err)
	}
}

func TestDaemonWALExcludesSnapshotFlags(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	err := serve(config{s: 3, walDir: t.TempDir(), load: "x.ptm", sync: "always"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "exclusive") {
		t.Errorf("wal+load err = %v", err)
	}
	err = serve(config{s: 3, walDir: t.TempDir(), sync: "sometimes"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "sync policy") {
		t.Errorf("bad sync err = %v", err)
	}
}

func TestDaemonBadSnapshotPath(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	err := serve(config{s: 3, listen: "127.0.0.1:0", load: "/does/not/exist.ptm"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("bad load err = %v", err)
	}
}

func TestParseFlags(t *testing.T) {
	cfg := parseFlags([]string{"-listen", "1.2.3.4:9", "-s", "5", "-save", "x.ptm"})
	if cfg.listen != "1.2.3.4:9" || cfg.s != 5 || cfg.save != "x.ptm" || cfg.httpAddr != "" {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":     0,
		"1024":  1024,
		"64K":   64 << 10,
		"64KB":  64 << 10,
		"64KiB": 64 << 10,
		"256M":  256 << 20,
		"2G":    2 << 30,
		"1T":    1 << 40,
		" 8M ":  8 << 20,
	}
	for in, want := range good {
		got, err := parseByteSize(in)
		if err != nil || got != want {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "-1", "64Q", "M", "1.5G", "9999999999999G"} {
		if _, err := parseByteSize(in); err == nil {
			t.Errorf("parseByteSize(%q) accepted", in)
		}
	}
}

func TestStoreFlagValidation(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	cases := []struct {
		cfg  config
		want string
	}{
		{config{s: 3, storeKind: "bogus"}, "unknown -store"},
		{config{s: 3, storeKind: "tiered"}, "requires -cold"},
		{config{s: 3, storeKind: "mmap"}, "requires -cold"},
		{config{s: 3, coldDir: "/tmp/x"}, "require -store"},
		{config{s: 3, budget: "64M"}, "require -store"},
		{config{s: 3, storeKind: "tiered", coldDir: "/dev/null/x", budget: "nope"}, "-resident-budget"},
	}
	for _, c := range cases {
		err := serve(c.cfg, logger, make(chan os.Signal))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("cfg %+v: err = %v, want %q", c.cfg, err, c.want)
		}
	}
	// mmap is read-only: -wal and -resident-budget are rejected.
	dir := t.TempDir()
	err := serve(config{s: 3, storeKind: "mmap", coldDir: dir, walDir: t.TempDir()}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("mmap+wal err = %v", err)
	}
	err = serve(config{s: 3, storeKind: "mmap", coldDir: dir, budget: "1M"}, logger, make(chan os.Signal))
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("mmap+budget err = %v", err)
	}
}

// TestDaemonTieredLifecycle runs the daemon over a tiered store with a
// budget small enough to freeze mid-stream, restarts it on the same
// cold directory, and checks every record survives in the cold tier.
func TestDaemonTieredLifecycle(t *testing.T) {
	coldDir := filepath.Join(t.TempDir(), "cold")

	cfg := config{s: 3, storeKind: "tiered", coldDir: coldDir, budget: "4K"}
	addr, shutdown, done := startDaemon(t, cfg)
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 8; p++ {
		rec, err := record.New(7, record.PeriodID(p), 8192)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			rec.Bitmap.Set(uint64(p*8192 + i*13))
		}
		if err := client.Upload(rec); err != nil {
			t.Fatal(err)
		}
	}
	vol, err := client.QueryVolume(7, 1)
	if err != nil || vol <= 0 {
		t.Fatalf("volume over tiered store = %v, %v", vol, err)
	}
	_ = client.Close()
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("tiered run exit: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(coldDir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments frozen under %s: %v %v", coldDir, segs, err)
	}

	// A read-only mmap head over the same directory serves the cold
	// records (hot-only ones are gone — mmap sees just the segments).
	addr2, shutdown2, done2 := startDaemon(t, config{s: 3, storeKind: "mmap", coldDir: coldDir})
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := client2.ListLocations()
	if err != nil || len(locs) != 1 || locs[0] != 7 {
		t.Fatalf("mmap head locations = %v, %v", locs, err)
	}
	ps, err := client2.ListPeriods(7)
	if err != nil || len(ps) == 0 {
		t.Fatalf("mmap head periods = %v, %v", ps, err)
	}
	vol2, err := client2.QueryVolume(7, ps[0])
	if err != nil || vol2 <= 0 {
		t.Fatalf("mmap head volume = %v, %v", vol2, err)
	}
	// Uploads are rejected by the read-only head.
	rec, err := record.New(8, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := client2.Upload(rec); !transport.IsRemote(err) {
		t.Fatalf("read-only upload err = %v, want remote rejection", err)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("mmap run exit: %v", err)
	}
}

// TestDaemonTieredWAL: tiered store + WAL — acknowledged records survive
// a restart even when some were frozen cold before the checkpoint.
func TestDaemonTieredWAL(t *testing.T) {
	coldDir := filepath.Join(t.TempDir(), "cold")
	walDir := filepath.Join(t.TempDir(), "wal")
	cfg := config{s: 3, storeKind: "tiered", coldDir: coldDir, budget: "4K",
		walDir: walDir, sync: "always", ckptEvery: 3}

	addr, shutdown, done := startDaemon(t, cfg)
	client, err := transport.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for p := 1; p <= n; p++ {
		rec, err := record.New(5, record.PeriodID(p), 8192)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			rec.Bitmap.Set(uint64(p*4096 + i*7))
		}
		if err := client.Upload(rec); err != nil {
			t.Fatal(err)
		}
	}
	_ = client.Close()
	shutdown()
	if err := <-done; err != nil {
		t.Fatalf("first run exit: %v", err)
	}

	addr2, shutdown2, done2 := startDaemon(t, cfg)
	client2, err := transport.Dial(addr2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := client2.ListPeriods(5)
	if err != nil || len(ps) != n {
		t.Fatalf("recovered %d periods (%v), want %d", len(ps), err, n)
	}
	_ = client2.Close()
	shutdown2()
	if err := <-done2; err != nil {
		t.Fatalf("restart exit: %v", err)
	}
}

func TestParseFlagsStore(t *testing.T) {
	cfg := parseFlags([]string{"-store", "tiered", "-cold", "/tmp/cold", "-resident-budget", "64M"})
	if cfg.storeKind != "tiered" || cfg.coldDir != "/tmp/cold" || cfg.budget != "64M" {
		t.Errorf("cfg = %+v", cfg)
	}
	if def := parseFlags(nil); def.storeKind != "mem" || def.coldDir != "" || def.budget != "" {
		t.Errorf("defaults = %+v", def)
	}
}
