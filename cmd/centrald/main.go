// Command centrald runs the central server of Section II-A: it listens for
// RSU record uploads and persistent-traffic queries over the TCP protocol.
//
//	centrald -listen :7700 -s 3 [-http :7780] [-load snap.ptm] [-save snap.ptm]
//
// With -save, the store is snapshotted to disk on SIGINT/SIGTERM before
// exit; with -load, an existing snapshot is restored at startup. -http
// exposes the read-only admin surface (/healthz, /stats, /locations,
// /query/...).
//
// With -wal DIR the store is backed by a write-ahead log: every record
// is on disk (per -sync) before its upload is acknowledged, the store
// recovers from the newest checkpoint plus log replay at startup, and a
// graceful shutdown flushes and checkpoints so the next boot replays
// nothing. -checkpoint-every bounds replay length between compactions.
// -wal and -load/-save are mutually exclusive — the WAL's own
// checkpoints are the snapshots.
//
// The record store itself is selected with -store:
//
//	-store mem     everything resident (the default)
//	-store tiered  hot records in RAM, sealed periods frozen to
//	               immutable segments under -cold DIR once the hot
//	               payload exceeds -resident-budget
//	-store mmap    read-only query head over an existing -cold DIR
//
// Cold reads go through a bounded block cache; PTM_BLOCKCACHE_BYTES
// overrides its default capacity (256MiB). -resident-budget and the
// env var accept plain bytes or K/M/G/T suffixes (binary, e.g. 64M).
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptm/internal/central"
	"ptm/internal/cluster"
	"ptm/internal/store"
	"ptm/internal/transport"
	"ptm/internal/wal"
)

func main() {
	cfg := parseFlags(os.Args[1:])
	logger := log.New(os.Stderr, "centrald: ", log.LstdFlags)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if err := serve(cfg, logger, sigc); err != nil {
		fmt.Fprintln(os.Stderr, "centrald:", err)
		os.Exit(1)
	}
}

type config struct {
	listen    string
	httpAddr  string
	s         int
	load      string
	save      string
	walDir    string
	sync      string
	ckptEvery int
	storeKind string // mem|tiered|mmap; "" means mem
	coldDir   string
	budget    string // resident-budget byte size; "" means unlimited
	// clusterNode, when non-empty, runs this process as the named member
	// of a cluster (requires -wal); shipInterval paces replication.
	clusterNode  string
	shipInterval time.Duration
	// ready and httpReady, if non-nil, receive the bound addresses once
	// serving — used by tests to synchronize.
	ready     chan<- string
	httpReady chan<- string
}

func parseFlags(args []string) config {
	fs := flag.NewFlagSet("centrald", flag.ExitOnError)
	var cfg config
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7700", "TCP listen address")
	fs.StringVar(&cfg.httpAddr, "http", "", "optional HTTP admin address (e.g. 127.0.0.1:7780)")
	fs.IntVar(&cfg.s, "s", 3, "system-wide representative-bit count")
	fs.StringVar(&cfg.load, "load", "", "snapshot file to restore at startup")
	fs.StringVar(&cfg.save, "save", "", "snapshot file to write on shutdown")
	fs.StringVar(&cfg.walDir, "wal", "", "write-ahead-log directory (empty: in-memory store)")
	fs.StringVar(&cfg.sync, "sync", "always", "WAL sync policy: always, interval, never")
	fs.IntVar(&cfg.ckptEvery, "checkpoint-every", 1024, "checkpoint the WAL every N ingested records (0: only at shutdown)")
	fs.StringVar(&cfg.storeKind, "store", "mem", "record store: mem, tiered, or mmap")
	fs.StringVar(&cfg.coldDir, "cold", "", "segment directory for -store=tiered/mmap")
	fs.StringVar(&cfg.budget, "resident-budget", "", "hot-tier payload bound for -store=tiered, e.g. 64M (empty: unlimited)")
	fs.StringVar(&cfg.clusterNode, "cluster-node", "", "cluster member ID: serve as this node of a cluster (requires -wal; ring arrives via ptmcluster)")
	fs.DurationVar(&cfg.shipInterval, "ship-interval", 500*time.Millisecond, "replication shipper period for -cluster-node")
	//ptmlint:allow errdrop -- flag.ExitOnError exits the process on a parse failure
	_ = fs.Parse(args)
	return cfg
}

// parseByteSize parses a byte count: a plain integer, optionally with a
// binary suffix K, M, G, or T (KiB/MiB/GiB/TiB are accepted too).
func parseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	for suf, sh := range map[string]int{"K": 10, "M": 20, "G": 30, "T": 40} {
		for _, full := range []string{suf + "iB", suf + "B", suf} {
			if strings.HasSuffix(t, full) {
				t, shift = strings.TrimSuffix(t, full), sh
				break
			}
		}
		if shift != 0 {
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n << shift, nil
}

// cacheBytesFromEnv reads PTM_BLOCKCACHE_BYTES; 0 means "use the
// store's default".
func cacheBytesFromEnv() (int64, error) {
	v := os.Getenv("PTM_BLOCKCACHE_BYTES")
	if v == "" {
		return 0, nil
	}
	n, err := parseByteSize(v)
	if err != nil {
		return 0, fmt.Errorf("PTM_BLOCKCACHE_BYTES: %w", err)
	}
	return n, nil
}

// buildServer constructs the central server over the store selected by
// -store/-cold/-resident-budget. readOnly reports an mmap head.
func buildServer(cfg config, logger *log.Logger) (srv *central.Server, readOnly bool, err error) {
	kind := cfg.storeKind
	if kind == "" {
		kind = "mem"
	}
	cacheBytes, err := cacheBytesFromEnv()
	if err != nil {
		return nil, false, err
	}
	var budget int64
	if cfg.budget != "" {
		if budget, err = parseByteSize(cfg.budget); err != nil {
			return nil, false, fmt.Errorf("-resident-budget: %w", err)
		}
	}
	switch kind {
	case "mem":
		if cfg.coldDir != "" || cfg.budget != "" {
			return nil, false, errors.New("-cold/-resident-budget require -store=tiered or -store=mmap")
		}
		srv, err = central.NewServer(cfg.s)
		return srv, false, err
	case "tiered":
		if cfg.coldDir == "" {
			return nil, false, errors.New("-store=tiered requires -cold DIR")
		}
		ts, err := store.OpenTiered(cfg.coldDir, store.TieredOptions{
			ResidentBudget: budget,
			CacheBytes:     cacheBytes,
		})
		if err != nil {
			return nil, false, err
		}
		srv, err = central.NewServerWithStore(cfg.s, ts)
		if err != nil {
			//ptmlint:allow errdrop -- the construction error is what the caller sees
			_ = ts.Close()
			return nil, false, err
		}
		st := ts.Stats()
		logger.Printf("tiered store in %s: %d cold records across %d segments (budget %s)",
			cfg.coldDir, st.ColdRecords, st.Segments, orUnlimited(cfg.budget))
		return srv, false, nil
	case "mmap":
		if cfg.coldDir == "" {
			return nil, false, errors.New("-store=mmap requires -cold DIR")
		}
		if cfg.budget != "" {
			return nil, false, errors.New("-resident-budget is meaningless for the read-only -store=mmap")
		}
		ms, err := store.OpenMmap(cfg.coldDir, cacheBytes)
		if err != nil {
			return nil, false, err
		}
		srv, err = central.NewServerWithStore(cfg.s, ms)
		if err != nil {
			//ptmlint:allow errdrop -- the construction error is what the caller sees
			_ = ms.Close()
			return nil, false, err
		}
		st := ms.Stats()
		logger.Printf("read-only mmap store over %s: %d records in %d segments",
			cfg.coldDir, st.Records, st.Segments)
		return srv, true, nil
	default:
		return nil, false, fmt.Errorf("unknown -store %q (want mem, tiered, or mmap)", kind)
	}
}

func orUnlimited(s string) string {
	if s == "" {
		return "unlimited"
	}
	return s
}

// serve runs the daemon until a signal arrives on sigc or the listener
// fails.
func serve(cfg config, logger *log.Logger, sigc <-chan os.Signal) error {
	head, readOnly, err := buildServer(cfg, logger)
	if err != nil {
		return err
	}
	defer func() {
		if err := head.CloseStore(); err != nil {
			logger.Printf("closing store: %v", err)
		}
	}()
	var (
		durable *central.Durable
		tstore  transport.Store = head
	)
	if cfg.walDir != "" {
		if cfg.load != "" || cfg.save != "" {
			return errors.New("-wal is exclusive with -load/-save: checkpoints are the snapshots")
		}
		if readOnly {
			return errors.New("-wal is meaningless for the read-only -store=mmap")
		}
		policy, err := wal.ParseSyncPolicy(cfg.sync)
		if err != nil {
			return err
		}
		durable, err = central.OpenDurableServer(cfg.walDir, head, wal.Options{Sync: policy}, cfg.ckptEvery)
		if err != nil {
			return err
		}
		tstore = durable
		st := durable.LogStats()
		logger.Printf("recovered %d locations from %s (replayed %d log entries, truncated %d torn bytes)",
			len(head.Locations()), cfg.walDir, st.Entries, st.TruncatedBytes)
	} else if cfg.load != "" {
		if err := loadSnapshot(head, cfg.load); err != nil {
			return err
		}
		logger.Printf("restored %d locations from %s", len(head.Locations()), cfg.load)
	}

	var node *cluster.Node
	if cfg.clusterNode != "" {
		if durable == nil {
			return errors.New("-cluster-node requires -wal: replication ships WAL segments")
		}
		node, err = cluster.NewNode(durable, cluster.Config{
			ID:           cfg.clusterNode,
			RingPath:     filepath.Join(cfg.walDir, "ring.json"),
			ShipInterval: cfg.shipInterval,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		tstore = node
		if r := node.Ring(); r != nil {
			logger.Printf("cluster node %s: ring epoch %d, %d members, R=%d",
				cfg.clusterNode, r.Epoch, len(r.Members), r.Replicas)
		} else {
			logger.Printf("cluster node %s: no ring yet (push one with ptmcluster)", cfg.clusterNode)
		}
	}

	srv, err := transport.NewServer(tstore, logger)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listening: %w", err)
	}
	logger.Printf("serving on %s (s=%d)", ln.Addr(), cfg.s)

	if cfg.httpAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		handler := head.Handler()
		if node != nil {
			// The cluster surface rides alongside the store admin pages:
			// /cluster serves the node status (ring epoch, per-peer
			// replication lag, applied watermarks), and the same snapshot
			// is published through expvar at /debug/vars. expvar.Publish
			// lives here in main — never in the cluster package — because
			// the process-global registry panics on duplicate names, which
			// in-process multi-node tests would trip.
			expvar.Publish("ptm_cluster", expvar.Func(func() any { return node.StatusSnapshot() }))
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				if err := enc.Encode(node.StatusSnapshot()); err != nil {
					logger.Printf("encoding /cluster: %v", err)
				}
			})
			mux.Handle("GET /debug/vars", expvar.Handler())
			handler = mux
		}
		httpSrv := &http.Server{Handler: handler}
		//ptmlint:allow goroutinehygiene -- lifecycle is bounded by the deferred httpSrv.Close below
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http: %v", err)
			}
		}()
		defer func() {
			if err := httpSrv.Close(); err != nil {
				logger.Printf("closing http: %v", err)
			}
		}()
		logger.Printf("admin HTTP on %s", httpLn.Addr())
		if cfg.httpReady != nil {
			cfg.httpReady <- httpLn.Addr().String()
		}
	}
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		logger.Printf("received %v, shutting down", sig)
		if err := srv.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, transport.ErrServerClosed) {
			return err
		}
	}

	if node != nil {
		// Stop the shipper before the WAL shuts down under it.
		if err := node.Close(); err != nil {
			logger.Printf("closing cluster node: %v", err)
		}
	}
	if durable != nil {
		// Graceful shutdown: flush whatever the sync policy left
		// buffered, then checkpoint so the next boot loads one snapshot
		// instead of replaying the whole log. A crash before either
		// step still recovers — that is the WAL's job — this only makes
		// the clean path fast.
		if err := durable.Sync(); err != nil {
			return fmt.Errorf("flushing wal: %w", err)
		}
		if err := durable.Checkpoint(); err != nil {
			return fmt.Errorf("checkpointing: %w", err)
		}
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing wal: %w", err)
		}
		logger.Printf("wal flushed and checkpointed in %s", cfg.walDir)
	}
	if cfg.save != "" {
		if err := saveSnapshot(head, cfg.save); err != nil {
			return err
		}
		logger.Printf("snapshot written to %s", cfg.save)
	}
	return nil
}

func loadSnapshot(srv *central.Server, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening snapshot: %w", err)
	}
	err = srv.LoadFrom(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("restoring snapshot: %w", err)
	}
	return nil
}

func saveSnapshot(srv *central.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating snapshot: %w", err)
	}
	err = srv.SaveTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	return nil
}
