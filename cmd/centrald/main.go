// Command centrald runs the central server of Section II-A: it listens for
// RSU record uploads and persistent-traffic queries over the TCP protocol.
//
//	centrald -listen :7700 -s 3 [-http :7780] [-load snap.ptm] [-save snap.ptm]
//
// With -save, the store is snapshotted to disk on SIGINT/SIGTERM before
// exit; with -load, an existing snapshot is restored at startup. -http
// exposes the read-only admin surface (/healthz, /stats, /locations,
// /query/...).
//
// With -wal DIR the store is backed by a write-ahead log: every record
// is on disk (per -sync) before its upload is acknowledged, the store
// recovers from the newest checkpoint plus log replay at startup, and a
// graceful shutdown flushes and checkpoints so the next boot replays
// nothing. -checkpoint-every bounds replay length between compactions.
// -wal and -load/-save are mutually exclusive — the WAL's own
// checkpoints are the snapshots.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"ptm/internal/central"
	"ptm/internal/transport"
	"ptm/internal/wal"
)

func main() {
	cfg := parseFlags(os.Args[1:])
	logger := log.New(os.Stderr, "centrald: ", log.LstdFlags)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if err := serve(cfg, logger, sigc); err != nil {
		fmt.Fprintln(os.Stderr, "centrald:", err)
		os.Exit(1)
	}
}

type config struct {
	listen    string
	httpAddr  string
	s         int
	load      string
	save      string
	walDir    string
	sync      string
	ckptEvery int
	// ready and httpReady, if non-nil, receive the bound addresses once
	// serving — used by tests to synchronize.
	ready     chan<- string
	httpReady chan<- string
}

func parseFlags(args []string) config {
	fs := flag.NewFlagSet("centrald", flag.ExitOnError)
	var cfg config
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7700", "TCP listen address")
	fs.StringVar(&cfg.httpAddr, "http", "", "optional HTTP admin address (e.g. 127.0.0.1:7780)")
	fs.IntVar(&cfg.s, "s", 3, "system-wide representative-bit count")
	fs.StringVar(&cfg.load, "load", "", "snapshot file to restore at startup")
	fs.StringVar(&cfg.save, "save", "", "snapshot file to write on shutdown")
	fs.StringVar(&cfg.walDir, "wal", "", "write-ahead-log directory (empty: in-memory store)")
	fs.StringVar(&cfg.sync, "sync", "always", "WAL sync policy: always, interval, never")
	fs.IntVar(&cfg.ckptEvery, "checkpoint-every", 1024, "checkpoint the WAL every N ingested records (0: only at shutdown)")
	//ptmlint:allow errdrop -- flag.ExitOnError exits the process on a parse failure
	_ = fs.Parse(args)
	return cfg
}

// serve runs the daemon until a signal arrives on sigc or the listener
// fails.
func serve(cfg config, logger *log.Logger, sigc <-chan os.Signal) error {
	var (
		store   *central.Server
		durable *central.Durable
		tstore  transport.Store
	)
	if cfg.walDir != "" {
		if cfg.load != "" || cfg.save != "" {
			return errors.New("-wal is exclusive with -load/-save: checkpoints are the snapshots")
		}
		policy, err := wal.ParseSyncPolicy(cfg.sync)
		if err != nil {
			return err
		}
		durable, err = central.OpenDurable(cfg.walDir, cfg.s, central.DefaultShards, wal.Options{Sync: policy}, cfg.ckptEvery)
		if err != nil {
			return err
		}
		store, tstore = durable.Server, durable
		st := durable.LogStats()
		logger.Printf("recovered %d locations from %s (replayed %d log entries, truncated %d torn bytes)",
			len(store.Locations()), cfg.walDir, st.Entries, st.TruncatedBytes)
	} else {
		var err error
		if store, err = central.NewServer(cfg.s); err != nil {
			return err
		}
		tstore = store
		if cfg.load != "" {
			if err := loadSnapshot(store, cfg.load); err != nil {
				return err
			}
			logger.Printf("restored %d locations from %s", len(store.Locations()), cfg.load)
		}
	}

	srv, err := transport.NewServer(tstore, logger)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listening: %w", err)
	}
	logger.Printf("serving on %s (s=%d)", ln.Addr(), cfg.s)

	if cfg.httpAddr != "" {
		httpLn, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		httpSrv := &http.Server{Handler: store.Handler()}
		//ptmlint:allow goroutinehygiene -- lifecycle is bounded by the deferred httpSrv.Close below
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http: %v", err)
			}
		}()
		defer func() {
			if err := httpSrv.Close(); err != nil {
				logger.Printf("closing http: %v", err)
			}
		}()
		logger.Printf("admin HTTP on %s", httpLn.Addr())
		if cfg.httpReady != nil {
			cfg.httpReady <- httpLn.Addr().String()
		}
	}
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		logger.Printf("received %v, shutting down", sig)
		if err := srv.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, transport.ErrServerClosed) {
			return err
		}
	}

	if durable != nil {
		// Graceful shutdown: flush whatever the sync policy left
		// buffered, then checkpoint so the next boot loads one snapshot
		// instead of replaying the whole log. A crash before either
		// step still recovers — that is the WAL's job — this only makes
		// the clean path fast.
		if err := durable.Sync(); err != nil {
			return fmt.Errorf("flushing wal: %w", err)
		}
		if err := durable.Checkpoint(); err != nil {
			return fmt.Errorf("checkpointing: %w", err)
		}
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing wal: %w", err)
		}
		logger.Printf("wal flushed and checkpointed in %s", cfg.walDir)
	}
	if cfg.save != "" {
		if err := saveSnapshot(store, cfg.save); err != nil {
			return err
		}
		logger.Printf("snapshot written to %s", cfg.save)
	}
	return nil
}

func loadSnapshot(store *central.Server, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening snapshot: %w", err)
	}
	err = store.LoadFrom(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("restoring snapshot: %w", err)
	}
	return nil
}

func saveSnapshot(store *central.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating snapshot: %w", err)
	}
	err = store.SaveTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	return nil
}
