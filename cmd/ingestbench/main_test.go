package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallBatch(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-rsus", "2", "-workers", "4", "-reports", "8000", "-periods", "2",
		"-batch=true", "-shards", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"ingest storm: 16000 reports",
		"upload (batched): 4 records in 2 round trips",
		"central store: 2 locations, 4 records, 4 shards",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSmallSingle(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-rsus", "1", "-workers", "2", "-reports", "2000", "-periods", "3",
		"-batch=false",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "upload (single): 3 records in 3 round trips") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-rsus", "0"},
		{"-reports", "10", "-rsus", "4", "-workers", "8"}, // no reports per worker
		{"-shards", "3"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
