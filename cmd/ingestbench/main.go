// Command ingestbench load-tests the ingest plane end to end: a worker
// storm sprays vehicle reports at lock-free RSUs over the DSRC channel,
// the finished records are uploaded to an in-process central server over
// TCP loopback (singly or as one batch frame per RSU), and both stages'
// throughput is reported.
//
//	ingestbench -rsus 4 -workers 8 -reports 400000 -batch
//
// This is the operational companion to the committed micro-benchmarks
// (make bench-ingest): one command that exercises atomic bitmap writes,
// RCU period rotation, sharded central ingest, and batched transport
// together and prints the achieved rates.
//
// With -wal DIR the in-process store is WAL-backed (-sync selects the
// policy), so the upload rate includes the durability plane's cost —
// that delta is the table in EXPERIMENTS.md §WAL. With -central ADDR the
// records go to an external centrald instead of an in-process server,
// which is how the crash-recovery smoke (scripts/crashsmoke.sh) drives a
// real daemon it can kill. With -cluster ADDR[,ADDR...] the records are
// routed to a centrald cluster's partition leaders instead, which is how
// the cluster smoke (scripts/clustersmoke.sh) measures replicated ingest.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"ptm/internal/central"
	"ptm/internal/cli"
	"ptm/internal/cluster/router"
	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/rsu"
	"ptm/internal/transport"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

// uploadClient is the surface the bench needs; a direct transport.Client
// and the cluster router both provide it.
type uploadClient interface {
	Upload(*record.Record) error
	UploadBatch([]*record.Record) (int, error)
	ListLocations() ([]vhash.LocationID, error)
	ListPeriods(vhash.LocationID) ([]record.PeriodID, error)
	Close() error
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ingestbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ingestbench", flag.ContinueOnError)
	var (
		nRSUs   = fs.Int("rsus", 4, "RSUs (one location each)")
		workers = fs.Int("workers", 8, "report-storm goroutines per RSU")
		reports = fs.Int("reports", 400000, "reports per period, spread across all RSUs")
		periods = fs.Int("periods", 4, "measurement periods to run")
		batch   = fs.Bool("batch", true, "upload each RSU's backlog as one UploadBatch frame")
		shards  = fs.Int("shards", central.DefaultShards, "central store shard count (power of two)")
		f       = fs.Float64("f", 2.0, "bitmap load factor (Eq. 2)")
		s       = fs.Int("s", 3, "representative bits per vehicle")
		cAddr   = fs.String("central", "", "external central server address (default: in-process server)")
		cSeeds  = fs.String("cluster", "", "comma-separated cluster seed addresses (uploads routed by partition)")
		walDir  = fs.String("wal", "", "WAL directory for the in-process store (default: memory only)")
		syncPol = fs.String("sync", "always", "WAL sync policy for -wal: always, interval, never")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nRSUs < 1 || *workers < 1 || *reports < 1 || *periods < 1 {
		return fmt.Errorf("rsus, workers, reports, and periods must be positive")
	}

	// Ingest-plane fixtures: one credentialed RSU per location.
	now := time.Now()
	authority, err := pki.NewAuthority(now, 24*time.Hour)
	if err != nil {
		return err
	}
	units := make([]*rsu.RSU, *nRSUs)
	chans := make([]*dsrc.Channel, *nRSUs)
	for i := 0; i < *nRSUs; i++ {
		cred, err := authority.IssueRSU(vhash.LocationID(i+1), now, 24*time.Hour)
		if err != nil {
			return err
		}
		if chans[i], err = dsrc.NewChannel(dsrc.Config{}); err != nil {
			return err
		}
		if units[i], err = rsu.New(cred, chans[i], *f, nil); err != nil {
			return err
		}
	}

	// Central stack: a cluster (-cluster), an external daemon (-central),
	// or an in-process server on TCP loopback, optionally WAL-backed (-wal).
	var store *central.Server
	var durable *central.Durable
	addr := *cAddr
	if *cSeeds != "" {
		if addr != "" {
			return fmt.Errorf("-cluster and -central are mutually exclusive")
		}
		if *walDir != "" {
			return fmt.Errorf("-wal configures the in-process store; it cannot apply to a -cluster deployment")
		}
	} else if addr == "" {
		var tstore transport.Store
		if *walDir != "" {
			policy, err := wal.ParseSyncPolicy(*syncPol)
			if err != nil {
				return err
			}
			durable, err = central.OpenDurable(*walDir, *s, *shards, wal.Options{Sync: policy}, 0)
			if err != nil {
				return err
			}
			defer func() {
				//ptmlint:allow errdrop -- best-effort teardown at process exit
				_ = durable.Close()
			}()
			store, tstore = durable.Server, durable
		} else {
			if store, err = central.NewServerSharded(*s, *shards); err != nil {
				return err
			}
			tstore = store
		}
		srv, err := transport.NewServer(tstore, nil)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		serveDone := make(chan struct{})
		go func() {
			//ptmlint:allow errdrop -- Serve exits via the deferred Close; its error is that Close
			_ = srv.Serve(ln)
			serveDone <- struct{}{}
		}()
		defer func() {
			//ptmlint:allow errdrop -- best-effort teardown at process exit
			_ = srv.Close()
			<-serveDone
		}()
		addr = ln.Addr().String()
	} else if *walDir != "" {
		return fmt.Errorf("-wal configures the in-process store; it cannot apply to an external -central server")
	}
	var client uploadClient
	if *cSeeds != "" {
		client, err = router.Dial(strings.Split(*cSeeds, ","), 5*time.Second)
	} else {
		client, err = transport.Dial(addr, 5*time.Second)
	}
	if err != nil {
		return err
	}
	defer func() {
		//ptmlint:allow errdrop -- best-effort teardown at process exit
		_ = client.Close()
	}()

	perRSU := *reports / *nRSUs
	perWorker := perRSU / *workers
	if perWorker == 0 {
		return fmt.Errorf("%d reports spread over %d RSUs x %d workers leaves none per worker",
			*reports, *nRSUs, *workers)
	}

	var stormTotal, uploadTotal time.Duration
	var recordsUploaded, roundTrips int
	for p := 1; p <= *periods; p++ {
		period := record.PeriodID(p)
		for _, u := range units {
			if err := u.StartPeriod(period, float64(perRSU)); err != nil {
				return err
			}
		}

		// Storm: every RSU takes *workers concurrent senders, each with a
		// disjoint index stream — the many-vehicles-one-junction shape the
		// lock-free report path exists for.
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, *nRSUs**workers)
		for i := 0; i < *nRSUs; i++ {
			ch := chans[i]
			for w := 0; w < *workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w) << 40
					for j := 0; j < perWorker; j++ {
						idx := (base + uint64(j)) * 0x9e3779b97f4a7c15
						if err := ch.Send(dsrc.Report{Period: period, Index: idx}); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		stormTotal += time.Since(start)

		// Drain: close the period on every RSU and upload the backlog.
		recs := make([]*record.Record, len(units))
		for i := 0; i < *nRSUs; i++ {
			if recs[i], err = units[i].EndPeriod(); err != nil {
				return err
			}
		}
		start = time.Now()
		if *batch {
			accepted, err := client.UploadBatch(recs)
			if err != nil {
				return fmt.Errorf("period %d batch upload: %w", p, err)
			}
			recordsUploaded += accepted
			roundTrips++
		} else {
			for _, rec := range recs {
				if err := client.Upload(rec); err != nil {
					return fmt.Errorf("period %d upload loc %d: %w", p, rec.Location, err)
				}
				recordsUploaded++
				roundTrips++
			}
		}
		uploadTotal += time.Since(start)
	}

	sent := *nRSUs * *workers * perWorker * *periods
	pr := cli.NewPrinter(out)
	pr.Printf("ingest storm: %d reports through %d RSUs x %d workers in %v (%.0f reports/sec)\n",
		sent, *nRSUs, *workers, stormTotal.Round(time.Millisecond),
		float64(sent)/stormTotal.Seconds())
	mode := "single"
	if *batch {
		mode = "batched"
	}
	pr.Printf("upload (%s): %d records in %d round trips over %v (%.0f records/sec)\n",
		mode, recordsUploaded, roundTrips, uploadTotal.Round(time.Millisecond),
		float64(recordsUploaded)/uploadTotal.Seconds())
	if store != nil {
		st := store.Stats()
		pr.Printf("central store: %d locations, %d records, %d shards\n",
			st.Locations, st.Records, store.Shards())
	} else {
		// External daemon or cluster: census over the wire.
		locs, err := client.ListLocations()
		if err != nil {
			return fmt.Errorf("listing locations: %w", err)
		}
		n := 0
		for _, loc := range locs {
			ps, err := client.ListPeriods(loc)
			if err != nil {
				return fmt.Errorf("listing periods at %d: %w", loc, err)
			}
			n += len(ps)
		}
		remote := *cAddr
		if *cSeeds != "" {
			remote = "cluster " + *cSeeds
		}
		pr.Printf("central store (remote %s): %d locations, %d records\n", remote, len(locs), n)
	}
	if durable != nil {
		lst := durable.LogStats()
		pr.Printf("wal (%s): %d appends, %d fsyncs (%.2f syncs/append), %d rotations\n",
			*syncPol, lst.Appends, lst.Syncs,
			float64(lst.Syncs)/float64(max(lst.Appends, 1)), lst.Rotations)
	}
	return pr.Err()
}
