package ptm

import (
	"time"

	"ptm/internal/aadt"
	"ptm/internal/mobility"
)

// Application-layer helpers: the transportation-engineering uses the
// paper's introduction motivates (AADT) and a road-network mobility model
// for realistic simulations.

// AADT (Annual Average Daily Traffic) types.
type (
	// DailyVolume is one day's traffic volume at a location, typically
	// produced by EstimateVolume over a period record.
	DailyVolume = aadt.Sample
	// AdjustmentFactors expand short counts to AADT estimates.
	AdjustmentFactors = aadt.Factors
)

// AADTAverage computes AADT as the mean over a (near-)complete year of
// daily volumes.
func AADTAverage(days []DailyVolume) (float64, error) {
	return aadt.Average(days)
}

// FitAADTFactors derives month and day-of-week adjustment factors from a
// historical year at a comparable location.
func FitAADTFactors(history []DailyVolume) (*AdjustmentFactors, error) {
	return aadt.FitFactors(history)
}

// AADTFromShortCounts expands a handful of daily counts into an AADT
// estimate using fitted adjustment factors.
func AADTFromShortCounts(days []DailyVolume, f *AdjustmentFactors) (float64, error) {
	return aadt.EstimateFromShortCounts(days, f)
}

// NewDailyVolume pairs a date with a volume estimate.
func NewDailyVolume(date time.Time, volume float64) DailyVolume {
	return DailyVolume{Date: date, Volume: volume}
}

// Mobility model types.
type (
	// RoadGrid is a rectangular network of instrumented intersections.
	RoadGrid = mobility.Grid
	// GridPoint is an intersection coordinate.
	GridPoint = mobility.Point
	// GridTrip is an origin-destination pair on the grid.
	GridTrip = mobility.Trip
	// TrafficWorld holds a commuter fleet and background traffic on a
	// grid.
	TrafficWorld = mobility.World
	// DayVisits maps locations to the vehicles that passed them in one
	// simulated day.
	DayVisits = mobility.Visits
)

// NewRoadGrid creates a W x H grid of instrumented intersections.
func NewRoadGrid(w, h int) (*RoadGrid, error) {
	return mobility.NewGrid(w, h)
}

// NewTrafficWorld creates an empty mobility world on the grid.
func NewTrafficWorld(grid *RoadGrid, s int, seed uint64) (*TrafficWorld, error) {
	return mobility.NewWorld(grid, s, seed)
}
