package ptm

import (
	"ptm/internal/core"
	"ptm/internal/record"
)

// PointEstimate is the result of a point persistent traffic estimation
// (paper Eq. 12), including the intermediate quantities for diagnostics.
type PointEstimate = core.PointResult

// PointToPointEstimate is the result of a point-to-point persistent
// traffic estimation (paper Eq. 21).
type PointToPointEstimate = core.PointToPointResult

// Estimation failure modes callers may want to test with errors.Is.
var (
	// ErrTooFewPeriods: persistent estimation needs at least 2 records.
	ErrTooFewPeriods = core.ErrTooFewPeriods
	// ErrSaturated: a joined bitmap ran out of zero bits; raise F.
	ErrSaturated = core.ErrSaturated
	// ErrDegenerate: measured fractions outside the estimator's domain.
	ErrDegenerate = core.ErrDegenerate
)

// EstimatePoint estimates the point persistent traffic volume — the
// number of vehicles that passed the records' location in every period —
// from one location's records (one per period, any power-of-two sizes).
func EstimatePoint(recs []*Record) (*PointEstimate, error) {
	set, err := newSet(recs)
	if err != nil {
		return nil, err
	}
	return core.EstimatePoint(set)
}

// EstimatePointBaseline is the naive benchmark the paper compares against
// in Fig. 4: plain linear counting on the AND of all records. Exposed so
// downstream evaluations can reproduce the comparison.
func EstimatePointBaseline(recs []*Record) (float64, error) {
	set, err := newSet(recs)
	if err != nil {
		return 0, err
	}
	return core.EstimatePointBaseline(set)
}

// EstimatePointToPoint estimates the point-to-point persistent traffic
// volume — the number of vehicles that passed both locations in every
// period — from the two locations' aligned record sets. s must match the
// representative-bit count the vehicles used (DefaultS unless deployed
// otherwise).
func EstimatePointToPoint(recsA, recsB []*Record, s int) (*PointToPointEstimate, error) {
	setA, err := newSet(recsA)
	if err != nil {
		return nil, err
	}
	setB, err := newSet(recsB)
	if err != nil {
		return nil, err
	}
	return core.EstimatePointToPoint(setA, setB, s)
}

// KWayEstimate is the result of the k-subset generalization of the point
// persistent estimator (an extension; Section III-B of the paper notes
// the possibility and adopts k=2).
type KWayEstimate = core.KWayResult

// EstimatePointKWay generalizes EstimatePoint to k subsets of Π
// (2 <= k <= number of periods), inverting the joint occupancy model
// numerically. For k=2 it agrees with EstimatePoint's closed form.
func EstimatePointKWay(recs []*Record, k int) (*KWayEstimate, error) {
	set, err := newSet(recs)
	if err != nil {
		return nil, err
	}
	return core.EstimatePointKWay(set, k)
}

// EstimateVolume estimates a single record's plain (per-period) traffic
// volume with linear probabilistic counting (paper Eq. 1).
func EstimateVolume(rec *Record) (float64, error) {
	return core.EstimateVolume(rec)
}

// EstimateODVolume estimates the number of vehicles that passed both
// locations during one measurement period (the non-persistent
// point-to-point problem of the paper's prior work), from the two
// locations' records for that same period.
func EstimateODVolume(recL, recLPrime *Record, s int) (*PointToPointEstimate, error) {
	return core.EstimateODVolume(recL, recLPrime, s)
}

// MultiPointBound is an upper bound on persistent traffic through three
// or more locations.
type MultiPointBound = core.MultiPointResult

// EstimateMultiPointUpperBound bounds the number of vehicles passing ALL
// of the given locations in every period by the minimum pairwise
// point-to-point persistent estimate. recsPerLocation holds one record
// slice per location, all covering the same periods.
func EstimateMultiPointUpperBound(recsPerLocation [][]*Record, s int) (*MultiPointBound, error) {
	sets := make([]*record.Set, len(recsPerLocation))
	for i, recs := range recsPerLocation {
		set, err := newSet(recs)
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}
	return core.EstimateMultiPointUpperBound(sets, s)
}

// Interval is a bootstrap confidence interval for an estimate.
type Interval = core.Interval

// PointConfidence returns a parametric-bootstrap confidence interval for
// a point persistent estimate. level is the nominal coverage (e.g. 0.95);
// replicates <= 0 selects a sensible default; seed makes the interval
// reproducible.
func PointConfidence(res *PointEstimate, level float64, replicates int, seed int64) (Interval, error) {
	return core.PointConfidence(res, level, replicates, seed)
}

// PointToPointConfidence returns a parametric-bootstrap confidence
// interval for a point-to-point persistent estimate.
func PointToPointConfidence(res *PointToPointEstimate, level float64, replicates int, seed int64) (Interval, error) {
	return core.PointToPointConfidence(res, level, replicates, seed)
}
