package ptm

// Coverage for the thin public wrappers whose substance is tested in the
// internal packages: each is exercised once through the façade so API
// regressions (signature drift, wiring mistakes) surface here.

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestEstimateODVolumeAPI(t *testing.T) {
	common := make([]*VehicleIdentity, 400)
	for i := range common {
		v, err := NewSeededVehicleIdentity(VehicleID(i), DefaultS, 31)
		if err != nil {
			t.Fatal(err)
		}
		common[i] = v
	}
	rng := rand.New(rand.NewSource(8))
	build := func(loc LocationID) *Record {
		b, err := NewRecordBuilder(loc, 1, 3000, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			b.Observe(v)
		}
		for i := 0; i < 2600; i++ {
			b.ObserveIndex(rng.Uint64())
		}
		return b.Finish()
	}
	res, err := EstimateODVolume(build(1), build(2), DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-400) / 400; re > 0.5 {
		t.Errorf("OD estimate %v vs 400", res.Estimate)
	}
}

func TestMultiPointUpperBoundAPI(t *testing.T) {
	recsA := makeRecords(t, 1, 3, 300, 2000, 41)
	recsB := makeRecords(t, 2, 3, 300, 2000, 41) // same seed: same common fleet
	recsC := makeRecords(t, 3, 3, 300, 2000, 41)
	bound, err := EstimateMultiPointUpperBound([][]*Record{recsA, recsB, recsC}, DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	if bound.UpperBound < 200 || bound.UpperBound > 450 {
		t.Errorf("bound = %v, want ~300", bound.UpperBound)
	}
	if len(bound.Pairwise) != 3 {
		t.Errorf("pairwise entries = %d", len(bound.Pairwise))
	}
	if _, err := EstimateMultiPointUpperBound([][]*Record{recsA}, DefaultS); err == nil {
		t.Error("single location accepted")
	}
	if _, err := EstimateMultiPointUpperBound([][]*Record{recsA, nil}, DefaultS); err == nil {
		t.Error("nil record slice accepted")
	}
}

func TestP2PConfidenceAPI(t *testing.T) {
	recsA := makeRecords(t, 4, 4, 500, 3000, 43)
	recsB := makeRecords(t, 5, 4, 500, 3000, 43)
	est, err := EstimatePointToPoint(recsA, recsB, DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := PointToPointConfidence(est, 0.9, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Hi || iv.Lo > est.Estimate || iv.Hi < est.Estimate {
		t.Errorf("interval [%v, %v] around %v", iv.Lo, iv.Hi, est.Estimate)
	}
}

func TestCryptoIdentityAPI(t *testing.T) {
	v, err := NewVehicleIdentity(7, DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID() != 7 || v.S() != DefaultS {
		t.Errorf("identity: id=%d s=%d", v.ID(), v.S())
	}
	if _, err := NewVehicleIdentity(1, 0); err == nil {
		t.Error("s=0 accepted")
	}
}

func TestTripTableAPI(t *testing.T) {
	tab, err := NewTripTable(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SetOD(1, 2, 500); err != nil {
		t.Fatal(err)
	}
	csv := "from,to,volume\n1,2,100\n2,3,200\n"
	loaded, err := LoadTripTableCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Zones() != 3 {
		t.Errorf("zones = %d", loaded.Zones())
	}
	v, err := loaded.OD(2, 3)
	if err != nil || v != 200 {
		t.Errorf("OD = %v, %v", v, err)
	}
}

func TestRSUControllerAPI(t *testing.T) {
	now := time.Now()
	authority, err := NewAuthority(now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := authority.IssueRSU(1, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewRSU(cred, ch, DefaultF, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewRSUController(unit,
		RSUSchedule{PeriodLength: time.Hour, BeaconInterval: time.Second},
		func(*Record) error { return nil },
		func(PeriodID) float64 { return 100 },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Uploaded() != 0 || ctl.Dropped() != 0 {
		t.Error("fresh controller has non-zero counters")
	}
}

func TestDialFailsFast(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Error("dial to dead port succeeded")
	}
}
