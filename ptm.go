// Package ptm is a Go implementation of privacy-preserving persistent
// traffic measurement for vehicle-to-infrastructure (V2I) systems, after
// Huang, Sun, Chen, Xu and Zhou, "Persistent Traffic Measurement Through
// Vehicle-to-Infrastructure Communications", IEEE ICDCS 2017.
//
// Road-side units (RSUs) encode each passing vehicle into a bitmap
// "traffic record" by setting a single pseudo-random bit derived from the
// vehicle's private keys and the RSU's location; no identities are ever
// transmitted or stored. The central server joins records across
// measurement periods (and locations) and runs analytical estimators:
//
//   - EstimatePoint measures the point persistent traffic — the number of
//     vehicles that passed one location in every one of t periods.
//   - EstimatePointToPoint measures the point-to-point persistent traffic —
//     the number of vehicles that passed two locations in every period.
//   - EstimateVolume measures a single period's plain volume.
//
// The privacy guarantee is quantified by PrivacyProfile: the probability
// that records implicate a vehicle that was never there ("noise") versus
// the extra probability when it was ("information"). Parameters S
// (representative bits per vehicle) and F (bitmap load factor) trade
// estimation accuracy against that ratio; the paper recommends S=3, F=2.
//
// Besides the estimators, the package exposes the full simulated
// deployment used by the paper's evaluation: a certificate authority,
// RSUs, vehicles, a lossy DSRC broadcast channel, a central record store,
// and a TCP backhaul protocol. See the examples directory.
package ptm

import (
	"fmt"

	"ptm/internal/lpc"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Paper-recommended defaults (Section VI-C).
const (
	// DefaultS is the recommended number of representative bits per
	// vehicle.
	DefaultS = 3
	// DefaultF is the recommended bitmap load factor.
	DefaultF = 2.0
)

// Core identifier types.
type (
	// LocationID identifies an RSU location.
	LocationID = vhash.LocationID
	// PeriodID numbers measurement periods.
	PeriodID = record.PeriodID
	// VehicleID identifies a vehicle (never transmitted).
	VehicleID = vhash.VehicleID
)

// Record is one RSU's privacy-preserving traffic record for one
// measurement period.
type Record = record.Record

// VehicleIdentity is a vehicle's private encoding state (ID, private key,
// constant array). It never leaves the vehicle.
type VehicleIdentity = vhash.Identity

// NewVehicleIdentity creates a vehicle identity with s representative bits
// using cryptographically random secrets.
func NewVehicleIdentity(id VehicleID, s int) (*VehicleIdentity, error) {
	return vhash.NewIdentity(id, s)
}

// NewSeededVehicleIdentity creates a deterministic identity for
// simulations and tests.
func NewSeededVehicleIdentity(id VehicleID, s int, seed uint64) (*VehicleIdentity, error) {
	return vhash.NewSeededIdentity(id, s, seed)
}

// RecordSize returns the Eq. (2) bitmap size for an RSU expecting the
// given per-period traffic volume under load factor f.
func RecordSize(expectedVolume, f float64) (int, error) {
	return lpc.BitmapSize(expectedVolume, f)
}

// RecordBuilder accumulates vehicle observations into a traffic record —
// the in-process equivalent of an RSU's measurement period, for
// applications that do not need the full radio/PKI simulation.
type RecordBuilder struct {
	rec *record.Record
}

// NewRecordBuilder starts a record at loc for period p, sized by Eq. (2)
// from the expected volume and load factor f (0 means DefaultF).
func NewRecordBuilder(loc LocationID, p PeriodID, expectedVolume, f float64) (*RecordBuilder, error) {
	if f == 0 {
		f = DefaultF
	}
	m, err := lpc.BitmapSize(expectedVolume, f)
	if err != nil {
		return nil, err
	}
	rec, err := record.New(loc, p, m)
	if err != nil {
		return nil, err
	}
	return &RecordBuilder{rec: rec}, nil
}

// Observe encodes one passing vehicle: it computes the vehicle's index for
// this location and record size and sets that bit.
func (b *RecordBuilder) Observe(v *VehicleIdentity) {
	b.rec.Bitmap.Set(v.Index(b.rec.Location, b.rec.Size()))
}

// ObserveIndex folds a raw index report (as received over DSRC) into the
// record.
func (b *RecordBuilder) ObserveIndex(idx uint64) {
	b.rec.Bitmap.Set(idx)
}

// Finish returns the completed record. The builder must not be used
// afterwards.
func (b *RecordBuilder) Finish() *Record {
	rec := b.rec
	b.rec = nil
	return rec
}

// newSet validates a slice of records as one location's Π.
func newSet(recs []*Record) (*record.Set, error) {
	set, err := record.NewSet(recs)
	if err != nil {
		return nil, fmt.Errorf("ptm: assembling record set: %w", err)
	}
	return set, nil
}
