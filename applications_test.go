package ptm

import (
	"math"
	"testing"
	"time"
)

// TestAADTPipeline: per-period volume estimates from privacy-preserving
// records feed AADT computation — the application chain the paper's
// introduction motivates.
func TestAADTPipeline(t *testing.T) {
	// Build a "year" of daily volumes with weekly structure by running
	// the volume estimator over synthetic records, then compute AADT.
	base := []float64{5000, 8200, 8400, 8300, 8500, 8700, 6200} // Sun..Sat
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	var days []DailyVolume
	nextID := VehicleID(0)
	var trueSum float64
	for d := 0; d < 365; d++ {
		date := start.AddDate(0, 0, d)
		vol := int(base[int(date.Weekday())])
		trueSum += float64(vol)
		// Sample ~1 in 6 days with real records (estimating all 365
		// would be slow); the rest use the known volume directly, as a
		// deployment would mix detector sources.
		est := float64(vol)
		if d%6 == 0 {
			b, err := NewRecordBuilder(1, PeriodID(d+1), float64(vol), 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < vol; i++ {
				v, err := NewSeededVehicleIdentity(nextID, DefaultS, 9)
				if err != nil {
					t.Fatal(err)
				}
				nextID++
				b.Observe(v)
			}
			est, err = EstimateVolume(b.Finish())
			if err != nil {
				t.Fatal(err)
			}
		}
		days = append(days, NewDailyVolume(date, est))
	}
	trueAADT := trueSum / 365

	got, err := AADTAverage(days)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-trueAADT) / trueAADT; re > 0.02 {
		t.Errorf("AADT %v vs true %v (rel err %.4f)", got, trueAADT, re)
	}

	// Short-count expansion: a Sunday-only count would underestimate by
	// ~35%; factors fix it.
	f, err := FitAADTFactors(days)
	if err != nil {
		t.Fatal(err)
	}
	sunday := days[4] // Jan 5, 2025 is a Sunday
	if sunday.Date.Weekday() != time.Sunday {
		t.Fatalf("expected Sunday, got %v", sunday.Date.Weekday())
	}
	expanded, err := AADTFromShortCounts([]DailyVolume{sunday}, f)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(expanded-trueAADT) / trueAADT; re > 0.05 {
		t.Errorf("expanded AADT %v vs true %v (rel err %.4f)", expanded, trueAADT, re)
	}
}

func TestKWayAPI(t *testing.T) {
	recs := makeRecords(t, 3, 6, 500, 3000, 21)
	kw, err := EstimatePointKWay(recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(kw.Estimate-500) / 500; re > 0.2 {
		t.Errorf("k=3 estimate %v vs 500 (rel err %.3f)", kw.Estimate, re)
	}
	if _, err := EstimatePointKWay(recs, 7); err == nil {
		t.Error("k > t accepted")
	}
}

func TestMobilityAPIValidation(t *testing.T) {
	if _, err := NewRoadGrid(0, 5); err == nil {
		t.Error("bad grid accepted")
	}
	grid, err := NewRoadGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrafficWorld(grid, 0, 1); err == nil {
		t.Error("bad s accepted")
	}
}
