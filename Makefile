# Convenience entry points; every target is plain go-toolchain underneath,
# so nothing here is required — see scripts/check.sh for the CI gauntlet.

GO ?= go

.PHONY: build test lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs ptmlint (all rules plus the suppression audit) in human-readable
# form. scripts/check.sh runs the same pass with -format=sarif and archives
# the report.
lint:
	$(GO) run ./cmd/ptmlint ./...

check:
	scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...
