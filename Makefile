# Convenience entry points; every target is plain go-toolchain underneath,
# so nothing here is required — see scripts/check.sh for the CI gauntlet.

GO ?= go

.PHONY: build test lint lint-fast check bench bench-json bench-ingest bench-wal bench-kernel bench-ooc bench-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs ptmlint (all rules plus the suppression audit) in human-readable
# form. scripts/check.sh runs the same pass with -format=sarif and archives
# the report.
lint:
	$(GO) run ./cmd/ptmlint ./...

# lint-fast runs only the syntax-level per-package rules — everything
# except the whole-program analyses (privflow taint tracking, the four
# concguard concurrency rules, and the three perfguard performance
# contracts), whose interprocedural fixpoints and compiler-diagnostic
# harvesting dominate lint wall time. Use it as the editor/pre-commit
# loop; `make lint` and scripts/check.sh remain the full gate.
lint-fast:
	$(GO) run ./cmd/ptmlint -rules=cryptorand,pow2size,lockedfields,errdrop,goroutinehygiene ./...

check:
	scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json records the join-kernel benchmark baseline (fused vs
# materialized) at the repo root. scripts/check.sh archives the committed
# baseline into $$ARTIFACT_DIR. Override BENCH_OUT to write elsewhere
# (e.g. `make bench-json BENCH_OUT=/tmp/after.json` for an A/B diff
# against the committed file).
BENCH_OUT ?= BENCH_pr3.json

bench-json:
	$(GO) test -run=NONE \
		-bench='BenchmarkJoinPoint|BenchmarkJoinPointToPoint|BenchmarkEstimatePoint|BenchmarkAndAll' \
		-benchmem ./internal/core/ ./internal/bitmap/ \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-ingest records the ingest-plane baseline (mutex vs atomic RSU
# ingest, single vs batched vs pipelined upload, global vs sharded central
# store) as BENCH_pr4.json. -cpu=1,4,8 captures the contention story.
bench-ingest:
	$(GO) test -run=NONE \
		-bench='BenchmarkIngest(Mutex|Atomic)|BenchmarkUpload(Single|Batched|Pipelined)|BenchmarkStore(Global|Sharded)|BenchmarkRotation' \
		-benchmem -cpu=1,4,8 \
		./internal/rsu/ ./internal/transport/ ./internal/central/ \
		| $(GO) run ./cmd/benchjson > BENCH_pr4.json

# bench-kernel records the unrolled-join / cache-blocking / estimate-
# cache baseline as BENCH_pr8.json: the multi-operand AND kernels with
# throughput (bytes folded per ns, from b.SetBytes), the machine's
# streaming ceiling (BenchmarkBandwidthBaseline: copy + popcount sweep)
# as the %-of-peak denominator, and the estimate cache's hit-vs-cold
# ratio. benchjson stamps GOAMD64 and the host's popcnt capability into
# the document header so baselines from different machines stay
# comparable. Override KERNEL_BENCH_OUT for A/B runs.
KERNEL_BENCH_OUT ?= BENCH_pr8.json

bench-kernel:
	$(GO) test -run=NONE \
		-bench='BenchmarkAndAll|BenchmarkBandwidthBaseline|BenchmarkEstimateCache' \
		-benchmem ./internal/bitmap/ ./internal/core/ \
		| $(GO) run ./cmd/benchjson > $(KERNEL_BENCH_OUT)

# bench-wal records the durability-plane baseline as BENCH_pr5.json: raw
# append throughput per sync policy, fsync amortization under concurrent
# appenders (group commit), and WAL-backed vs in-memory ingest — the
# price of the Ack-means-durable promise against the PR 4 no-WAL
# baseline. -cpu=1,4,8 shows group commit collapsing the fsync cost.
bench-wal:
	$(GO) test -run=NONE \
		-bench='BenchmarkAppend(Serial|GroupCommit)|BenchmarkIngest(Memory|Durable)' \
		-benchmem -cpu=1,4,8 \
		./internal/wal/ ./internal/central/ \
		| $(GO) run ./cmd/benchjson > BENCH_pr5.json

# bench-ooc records the memory-hierarchy baseline as BENCH_pr9.json: the
# same m=2^24 four-period AND join against the resident store, the cold
# tier with a warm block cache, and the cold tier with a degenerate
# cache (every span madvise-evicted between iterations). Each row
# carries its tier/pagecache/budget/m/t parameters (benchjson lifts the
# key=value name segments into structured params) plus cache
# hit/miss/eviction counters per op. Override OOC_BENCH_OUT for A/B runs.
OOC_BENCH_OUT ?= BENCH_pr9.json

bench-ooc:
	$(GO) test -run=NONE \
		-bench='BenchmarkOOCJoin' \
		-benchmem ./internal/store/ \
		| $(GO) run ./cmd/benchjson > $(OOC_BENCH_OUT)

# bench-cluster records the cluster-plane baseline as BENCH_pr10.json:
# routed upload-to-ack throughput for single-node vs replicated rings,
# the shipper's per-round cost of pushing sealed WAL segments to R-1
# followers, and point-to-point queries on the colocated (server-side
# fused join) vs cross-partition (router fetch-and-join) paths. Every
# row carries nodes=/replicas= params via cmd/benchjson so the
# replication tax is a structured diff, not a name convention. Override
# CLUSTER_BENCH_OUT for A/B runs.
CLUSTER_BENCH_OUT ?= BENCH_pr10.json

bench-cluster:
	$(GO) test -run=NONE \
		-bench='BenchmarkCluster(Upload|Ship|QueryP2P)' \
		-benchmem ./internal/cluster/router/ \
		| $(GO) run ./cmd/benchjson > $(CLUSTER_BENCH_OUT)
