// Sioux Falls: point-to-point persistent traffic on real trip-table data.
//
// This is the paper's Table I scenario: L' is the busiest zone of the
// Sioux Falls network (451,000 vehicles/day); we pick zone 8 (28,000
// vehicles/day, 3,000 of which also pass L') and measure how many vehicles
// traveled between the two zones on every one of five days. The two RSUs'
// bitmaps differ in size by a factor of 16 — the case where naive designs
// break down.
//
// Run with: go run ./examples/siouxfalls
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptm"
)

func main() {
	table := ptm.SiouxFalls()
	const (
		zoneL = ptm.Zone(8)
		days  = 5
	)
	zoneLPrime := ptm.SiouxFallsLPrime

	n, err := table.Volume(zoneL)
	if err != nil {
		log.Fatal(err)
	}
	nPrime, err := table.Volume(zoneLPrime)
	if err != nil {
		log.Fatal(err)
	}
	nCommon, err := table.PairVolume(zoneL, zoneLPrime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone %d volume: %.0f/day; zone %d volume: %.0f/day; common: %.0f/day\n",
		zoneL, n, zoneLPrime, nPrime, nCommon)

	// Vehicles traveling between both zones every day.
	common := make([]*ptm.VehicleIdentity, int(nCommon))
	for i := range common {
		v, err := ptm.NewSeededVehicleIdentity(ptm.VehicleID(i), ptm.DefaultS, 44)
		if err != nil {
			log.Fatal(err)
		}
		common[i] = v
	}

	locL := ptm.LocationID(zoneL)
	locLPrime := ptm.LocationID(zoneLPrime)
	rng := rand.New(rand.NewSource(9))
	build := func(loc ptm.LocationID, total float64) []*ptm.Record {
		recs := make([]*ptm.Record, days)
		for day := 1; day <= days; day++ {
			b, err := ptm.NewRecordBuilder(loc, ptm.PeriodID(day), total, ptm.DefaultF)
			if err != nil {
				log.Fatal(err)
			}
			for _, v := range common {
				b.Observe(v)
			}
			for i := 0; i < int(total-nCommon); i++ {
				b.ObserveIndex(rng.Uint64()) // transient traffic of the day
			}
			recs[day-1] = b.Finish()
		}
		return recs
	}
	recsL := build(locL, n)
	recsLPrime := build(locLPrime, nPrime)

	fmt.Printf("record sizes: %d bits at zone %d vs %d bits at zone %d (ratio %d)\n",
		recsL[0].Size(), zoneL, recsLPrime[0].Size(), zoneLPrime,
		recsLPrime[0].Size()/recsL[0].Size())

	est, err := ptm.EstimatePointToPoint(recsL, recsLPrime, ptm.DefaultS)
	if err != nil {
		log.Fatal(err)
	}
	relErr := abs(est.Estimate-nCommon) / nCommon
	fmt.Printf("point-to-point persistent estimate: %.0f (true %.0f, rel err %.4f)\n",
		est.Estimate, nCommon, relErr)
	fmt.Printf("diagnostics: m=%d m'=%d V0=%.4f V0'=%.4f V0''=%.4f\n",
		est.M, est.MPrime, est.V0, est.V0Prime, est.V0DoublePrime)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
