// Privacysweep: explore the accuracy–privacy tradeoff.
//
// The deployment parameters f (bitmap load factor) and s (representative
// bits per vehicle) pull in opposite directions: larger f means less bit
// mixing, hence better estimates but easier tracking; larger s means a
// vehicle looks different at more locations, hence better privacy but
// noisier point-to-point estimates. This example measures both sides for
// each parameter point — the reasoning behind the paper's Table II and its
// f=2, s=3 recommendation.
//
// Run with: go run ./examples/privacysweep
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"ptm"
	"ptm/internal/cli"
)

const (
	days    = 5
	trials  = 8
	common  = 600
	perSide = 5000 // per-period volume at each of the two locations
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	tp := cli.NewPrinter(w)
	tp.Println("f\ts\tnoise/info ratio\tnoise p\tmean rel err (p2p)")
	for _, f := range []float64{1.5, 2, 3} {
		for _, s := range []int{2, 3, 5} {
			prof, err := ptm.EvaluatePrivacy(f, s)
			if err != nil {
				log.Fatal(err)
			}
			re := measureAccuracy(f, s)
			marker := ""
			if f == 2 && s == 3 {
				marker = "  <- paper's recommendation"
			}
			tp.Printf("%.1f\t%d\t%.3f\t%.3f\t%.4f%s\n", f, s, prof.Ratio, prof.Noise, re, marker)
		}
	}
	if err := tp.Err(); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nratio > 1 means tracking evidence from the records is mostly noise;")
	fmt.Println("rel err is the accuracy cost of that protection.")
}

// measureAccuracy runs a small point-to-point simulation at (f, s) and
// returns the mean relative error.
func measureAccuracy(f float64, s int) float64 {
	var sum float64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000*f) + int64(s*100+trial)))
		commonFleet := make([]*ptm.VehicleIdentity, common)
		for i := range commonFleet {
			v, err := ptm.NewSeededVehicleIdentity(ptm.VehicleID(trial*1_000_000+i), s, uint64(s)<<16|uint64(f*8))
			if err != nil {
				log.Fatal(err)
			}
			commonFleet[i] = v
		}
		build := func(loc ptm.LocationID) []*ptm.Record {
			recs := make([]*ptm.Record, days)
			for day := 1; day <= days; day++ {
				b, err := ptm.NewRecordBuilder(loc, ptm.PeriodID(day), perSide, f)
				if err != nil {
					log.Fatal(err)
				}
				for _, v := range commonFleet {
					b.Observe(v)
				}
				for i := 0; i < perSide-common; i++ {
					b.ObserveIndex(rng.Uint64())
				}
				recs[day-1] = b.Finish()
			}
			return recs
		}
		recsA := build(1)
		recsB := build(2)
		est, err := ptm.EstimatePointToPoint(recsA, recsB, s)
		if err != nil {
			log.Fatal(err)
		}
		sum += math.Abs(est.Estimate-common) / common
	}
	return sum / trials
}
