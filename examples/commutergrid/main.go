// Commutergrid: persistent traffic on a simulated road network.
//
// A 6x6 downtown grid carries two commuter corridors — an east-west
// arterial and a north-south avenue crossing it — plus heavy random
// background traffic. After a work week of records, we ask: how much of
// each intersection's traffic is the persistent commuter core, and how
// many vehicles persistently travel between two arterial intersections?
// Mobility ground truth lets us check every answer.
//
// Run with: go run ./examples/commutergrid
package main

import (
	"fmt"
	"log"

	"ptm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	grid, err := ptm.NewRoadGrid(6, 6)
	if err != nil {
		return err
	}
	world, err := ptm.NewTrafficWorld(grid, ptm.DefaultS, 2026)
	if err != nil {
		return err
	}
	// 900 commuters on the east-west arterial (y = 3), 600 on the
	// north-south avenue (x = 2), 5000 one-off trips per day.
	if err := world.AddCommuters(900, ptm.GridTrip{From: ptm.GridPoint{X: 0, Y: 3}, To: ptm.GridPoint{X: 5, Y: 3}}); err != nil {
		return err
	}
	if err := world.AddCommuters(600, ptm.GridTrip{From: ptm.GridPoint{X: 2, Y: 0}, To: ptm.GridPoint{X: 2, Y: 5}}); err != nil {
		return err
	}
	if err := world.SetBackgroundTrips(5000); err != nil {
		return err
	}

	// Instrument three intersections: two on the arterial and the
	// arterial/avenue crossing.
	west, err := grid.Loc(ptm.GridPoint{X: 1, Y: 3})
	if err != nil {
		return err
	}
	east, err := grid.Loc(ptm.GridPoint{X: 4, Y: 3})
	if err != nil {
		return err
	}
	crossing, err := grid.Loc(ptm.GridPoint{X: 2, Y: 3})
	if err != nil {
		return err
	}
	watched := []ptm.LocationID{west, east, crossing}

	// One work week of records per intersection.
	const days = 5
	records := map[ptm.LocationID][]*ptm.Record{}
	for day := 1; day <= days; day++ {
		visits, err := world.Day()
		if err != nil {
			return err
		}
		for _, loc := range watched {
			vehicles := visits[loc]
			b, err := ptm.NewRecordBuilder(loc, ptm.PeriodID(day), float64(max(len(vehicles), 1)), ptm.DefaultF)
			if err != nil {
				return err
			}
			for _, v := range vehicles {
				b.Observe(v)
			}
			records[loc] = append(records[loc], b.Finish())
		}
	}

	names := map[ptm.LocationID]string{west: "west arterial", east: "east arterial", crossing: "crossing"}
	for _, loc := range watched {
		est, err := ptm.EstimatePoint(records[loc])
		if err != nil {
			return err
		}
		iv, err := ptm.PointConfidence(est, 0.95, 0, 1)
		if err != nil {
			return err
		}
		truth := world.CommutersThrough(loc)
		fmt.Printf("%-14s persistent: %6.0f  [95%%: %5.0f, %5.0f]  (true %d)\n",
			names[loc], est.Estimate, iv.Lo, iv.Hi, truth)
	}

	p2p, err := ptm.EstimatePointToPoint(records[west], records[east], ptm.DefaultS)
	if err != nil {
		return err
	}
	truthBoth := world.CommutersThroughBoth(west, east)
	fmt.Printf("west<->east    persistent: %6.0f  (true %d)\n", p2p.Estimate, truthBoth)
	return nil
}
