// Citynet: a complete distributed deployment in one process.
//
// Three RSUs at different intersections run the full protocol — signed
// beacons over lossy radio channels, vehicle-side certificate checks,
// index reports under one-time MAC addresses — and upload their records to
// a central server over TCP. A commuter fleet drives the same route
// (A -> B -> C) every day; extra local traffic appears at each
// intersection each day. The operator then queries the central server for
// persistent and point-to-point persistent volumes.
//
// Run with: go run ./examples/citynet
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"ptm"
)

const (
	locA, locB, locC = ptm.LocationID(101), ptm.LocationID(102), ptm.LocationID(103)
	days             = 4
	commuters        = 400  // drive A->B->C every day
	localPerDay      = 1800 // per-intersection one-off traffic per day
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	now := time.Now()

	// Trusted third party and the central server behind TCP.
	authority, err := ptm.NewAuthority(now, 365*24*time.Hour)
	if err != nil {
		return err
	}
	store, err := ptm.NewCentralServer(ptm.DefaultS)
	if err != nil {
		return err
	}
	srv, err := ptm.NewTransportServer(store, nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("closing server: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, ptm.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}()

	// Three RSUs, each with its own (lossy) radio neighborhood.
	type site struct {
		loc ptm.LocationID
		ch  *ptm.Channel
		rsu *ptm.RSU
	}
	sites := make([]*site, 0, 3)
	for i, loc := range []ptm.LocationID{locA, locB, locC} {
		cred, err := authority.IssueRSU(loc, now, 365*24*time.Hour)
		if err != nil {
			return err
		}
		ch, err := ptm.NewChannel(ptm.ChannelConfig{BeaconLoss: 0.2, Seed: int64(i)})
		if err != nil {
			return err
		}
		unit, err := ptm.NewRSU(cred, ch, ptm.DefaultF, nil)
		if err != nil {
			return err
		}
		sites = append(sites, &site{loc: loc, ch: ch, rsu: unit})
	}

	client, err := ptm.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		return err
	}
	defer client.Close()

	// The commuter fleet.
	fleet := make([]*ptm.Vehicle, commuters)
	for i := range fleet {
		id, err := ptm.NewSeededVehicleIdentity(ptm.VehicleID(i), ptm.DefaultS, 77)
		if err != nil {
			return err
		}
		fleet[i], err = ptm.NewVehicle(id, authority, nil)
		if err != nil {
			return err
		}
	}

	nextLocal := ptm.VehicleID(1 << 32)
	for day := 1; day <= days; day++ {
		for _, s := range sites {
			if err := s.rsu.StartPeriod(ptm.PeriodID(day), commuters+localPerDay); err != nil {
				return err
			}
		}
		// Commuters pass every intersection on their route.
		var leaves []func()
		for _, s := range sites {
			for _, v := range fleet {
				leave, err := v.PassThrough(s.ch)
				if err != nil {
					return err
				}
				leaves = append(leaves, leave)
			}
			// Local traffic: fresh vehicles at this site only.
			for i := 0; i < localPerDay; i++ {
				id, err := ptm.NewSeededVehicleIdentity(nextLocal, ptm.DefaultS, 77)
				if err != nil {
					return err
				}
				nextLocal++
				lv, err := ptm.NewVehicle(id, authority, nil)
				if err != nil {
					return err
				}
				leave, err := lv.PassThrough(s.ch)
				if err != nil {
					return err
				}
				leaves = append(leaves, leave)
			}
		}
		// Beacon repeatedly: the 20% beacon loss is recovered by the
		// once-per-second schedule.
		for round := 0; round < 8; round++ {
			for _, s := range sites {
				if err := s.rsu.Beacon(); err != nil {
					return err
				}
			}
		}
		for _, leave := range leaves {
			leave()
		}
		// Period end: each RSU uploads its record over TCP.
		for _, s := range sites {
			rec, err := s.rsu.EndPeriod()
			if err != nil {
				return err
			}
			if err := client.Upload(rec); err != nil {
				return err
			}
		}
		fmt.Printf("day %d: 3 records uploaded\n", day)
	}

	// Operator queries.
	periods := make([]ptm.PeriodID, days)
	for i := range periods {
		periods[i] = ptm.PeriodID(i + 1)
	}
	for _, loc := range []ptm.LocationID{locA, locB, locC} {
		got, err := client.QueryPointPersistent(loc, periods)
		if err != nil {
			return err
		}
		fmt.Printf("persistent traffic at %d:      %6.0f (true %d)\n", loc, got, commuters)
	}
	p2p, err := client.QueryPointToPointPersistent(locA, locC, periods)
	if err != nil {
		return err
	}
	fmt.Printf("persistent traffic A->C:       %6.0f (true %d)\n", p2p, commuters)
	return nil
}
