// Quickstart: measure the persistent traffic at one intersection.
//
// A city wants to know how much of the traffic at intersection 17 is the
// same core commuter population versus one-off pass-throughs. Each day the
// RSU encodes passing vehicles into a privacy-preserving bitmap record; the
// records are then joined to estimate how many vehicles appeared on ALL
// days.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ptm"
)

func main() {
	const (
		intersection = ptm.LocationID(17)
		days         = 5
		commuters    = 1200 // drive through every day (ground truth)
		dailyExtra   = 6000 // transient vehicles per day
	)

	// The commuter fleet: each vehicle holds private secrets; only bit
	// indices derived from them are ever transmitted.
	fleet := make([]*ptm.VehicleIdentity, commuters)
	for i := range fleet {
		v, err := ptm.NewSeededVehicleIdentity(ptm.VehicleID(i), ptm.DefaultS, 2026)
		if err != nil {
			log.Fatal(err)
		}
		fleet[i] = v
	}

	// One record per day, sized by the expected volume (Eq. 2).
	rng := rand.New(rand.NewSource(7))
	records := make([]*ptm.Record, days)
	for day := 1; day <= days; day++ {
		b, err := ptm.NewRecordBuilder(intersection, ptm.PeriodID(day), commuters+dailyExtra, ptm.DefaultF)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range fleet {
			b.Observe(v) // commuter sets its location-specific bit
		}
		for i := 0; i < dailyExtra; i++ {
			b.ObserveIndex(rng.Uint64()) // transients: fresh vehicles, uniform bits
		}
		records[day-1] = b.Finish()
	}

	// Per-day volume (plain linear counting, Eq. 1).
	vol, err := ptm.EstimateVolume(records[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1 volume estimate:     %8.0f (true %d)\n", vol, commuters+dailyExtra)

	// Persistent traffic across all days (the paper's Eq. 12).
	est, err := ptm.EstimatePoint(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persistent traffic:        %8.0f (true %d)\n", est.Estimate, commuters)

	// The naive alternative (linear counting on the AND of all records)
	// badly overcounts — transient hash collisions masquerade as
	// persistent vehicles.
	naive, err := ptm.EstimatePointBaseline(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive AND estimate:        %8.0f (overcounts)\n", naive)

	// What privacy does this deployment preserve?
	prof, err := ptm.EvaluatePrivacy(ptm.DefaultF, ptm.DefaultS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noise-to-information ratio: %.2f (tracking evidence is %.0f%% noise)\n",
		prof.Ratio, 100*prof.Noise/(prof.Noise+prof.Info))
}
