// Odmatrix: reconstruct origin–destination volumes from one day of
// privacy-preserving records.
//
// Every trip in the Sioux Falls table sends one vehicle past its origin
// and destination RSUs. Each of the 24 zone RSUs keeps only its bitmap
// record; afterwards the single-period point-to-point estimator recovers
// the pairwise OD volumes — the input transportation engineers feed into
// congestion-source analysis — without any vehicle ever being identified.
//
// Run with: go run ./examples/odmatrix
package main

import (
	"fmt"
	"log"
	"math"

	"ptm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	table := ptm.SiouxFalls()
	const day = ptm.PeriodID(1)

	// One RecordBuilder per zone, sized from the zone's daily volume.
	builders := make(map[ptm.Zone]*ptm.RecordBuilder, 24)
	for z := ptm.Zone(1); z <= 24; z++ {
		vol, err := table.Volume(z)
		if err != nil {
			return err
		}
		b, err := ptm.NewRecordBuilder(ptm.LocationID(z), day, vol, ptm.DefaultF)
		if err != nil {
			return err
		}
		builders[z] = b
	}

	// Drive the trip table: v_ij vehicles pass zones i and j. The trip
	// count is tracked separately from the identity counter: vehicle IDs
	// are private state (ptmlint's privflow rule rejects printing one),
	// while the aggregate count is the system's intended public output.
	var nextID ptm.VehicleID
	trips := 0
	for i := ptm.Zone(1); i <= 24; i++ {
		for j := ptm.Zone(1); j <= 24; j++ {
			vol, err := table.OD(i, j)
			if err != nil {
				return err
			}
			for k := 0; k < int(vol); k++ {
				v, err := ptm.NewSeededVehicleIdentity(nextID, ptm.DefaultS, 2027)
				if err != nil {
					return err
				}
				nextID++
				trips++
				builders[i].Observe(v)
				builders[j].Observe(v)
			}
		}
	}
	records := make(map[ptm.Zone]*ptm.Record, 24)
	for z, b := range builders {
		records[z] = b.Finish()
	}
	fmt.Printf("encoded %d vehicle trips into 24 records\n\n", trips)

	// Reconstruct the Table I pairs: each zone against the busiest zone.
	lPrime := ptm.SiouxFallsLPrime
	fmt.Println("pair        true OD   estimated   rel err")
	var worst float64
	for _, z := range []ptm.Zone{1, 2, 3, 4, 5, 6, 7, 8} {
		truth, err := table.PairVolume(z, lPrime)
		if err != nil {
			return err
		}
		est, err := ptm.EstimateODVolume(records[z], records[lPrime], ptm.DefaultS)
		if err != nil {
			return err
		}
		re := math.Abs(est.Estimate-truth) / truth
		worst = math.Max(worst, re)
		fmt.Printf("%2d <-> %2d  %8.0f   %9.0f   %.4f\n", z, lPrime, truth, est.Estimate, re)
	}
	fmt.Printf("\nworst relative error: %.4f\n", worst)
	fmt.Println("\nsmall pairs are noisy at t=1 — the s*m' factor amplifies V0'' sampling")
	fmt.Println("noise. This is exactly why the paper joins multiple periods: see")
	fmt.Println("examples/siouxfalls, where the same smallest pair reaches ~5% at t=5.")
	return nil
}
