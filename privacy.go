package ptm

import (
	"ptm/internal/privacy"
)

// PrivacyProfile quantifies the privacy preserved at a parameter point
// (Section V): Noise is the probability p that the records implicate a
// vehicle at a location pair it never visited; Info is the additional
// probability p'−p when it did; Ratio is Noise/Info — above 1, tracking
// inferences drawn from the records are more likely noise than signal.
type PrivacyProfile = privacy.Profile

// EvaluatePrivacy returns the asymptotic (large-record) privacy profile
// for load factor f and representative-bit count s. The paper's Table II
// is this function over f ∈ {1..4}, s ∈ {2..5}.
func EvaluatePrivacy(f float64, s int) (PrivacyProfile, error) {
	return privacy.Evaluate(f, s)
}

// PrivacySweep evaluates profiles over a parameter grid (s-major order).
func PrivacySweep(fs []float64, ss []int) ([]PrivacyProfile, error) {
	return privacy.Sweep(fs, ss)
}

// TrackingNoise returns the exact finite-size noise probability p
// (Eq. 22) for a location whose record has mPrime bits and saw nPrime
// vehicles.
func TrackingNoise(nPrime float64, mPrime int) (float64, error) {
	return privacy.Noise(nPrime, mPrime)
}

// NoiseToInformationRatio returns the exact finite-size ratio p/(p'−p)
// (Eq. 24).
func NoiseToInformationRatio(nPrime float64, mPrime, s int) (float64, error) {
	return privacy.Ratio(nPrime, mPrime, s)
}
