package ptm

import (
	"crypto/tls"
	"io"
	"log"
	"net"
	"time"

	"ptm/internal/central"
	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/rsu"
	"ptm/internal/transport"
	"ptm/internal/trips"
	"ptm/internal/vehicle"
	"ptm/internal/wal"
)

// Deployment components: the full measurement system of Section II, from
// trusted authority to central server, re-exported for applications that
// want to run the protocol rather than just the math.
type (
	// Authority is the trusted third party issuing RSU certificates.
	Authority = pki.Authority
	// Credential is an RSU's certificate and signing key.
	Credential = pki.Credential
	// Channel is a simulated DSRC radio neighborhood with optional loss.
	Channel = dsrc.Channel
	// ChannelConfig tunes beacon/report loss probabilities.
	ChannelConfig = dsrc.Config
	// Beacon is an RSU broadcast.
	Beacon = dsrc.Beacon
	// RSU is a road-side unit runtime.
	RSU = rsu.RSU
	// Vehicle is an on-board unit.
	Vehicle = vehicle.Vehicle
	// CentralServer stores records and answers persistent-traffic
	// queries.
	CentralServer = central.Server
	// DurableCentralServer is a CentralServer backed by a write-ahead
	// log: every ingested record is on disk before the upload is
	// acknowledged, and the store recovers after a crash.
	DurableCentralServer = central.Durable
	// CentralStore is the record-store interface a TransportServer
	// fronts; both *CentralServer and *DurableCentralServer satisfy it.
	CentralStore = transport.Store
	// TransportServer exposes a CentralStore over TCP.
	TransportServer = transport.Server
	// Client is a TCP client for record upload and queries.
	Client = transport.Client
	// WALOptions tunes the durability plane's segmented log (sync
	// policy, segment size, flush interval).
	WALOptions = wal.Options
	// SyncPolicy selects when appends reach stable storage.
	SyncPolicy = wal.SyncPolicy
)

// Write-ahead-log sync policies, re-exported for deployments.
const (
	// SyncAlways fsyncs (group-committed) before the Ack: an
	// acknowledged record survives power loss.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a timer: bounded loss, bounded latency.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS.
	SyncNever = wal.SyncNever
)

// ErrServerClosed is returned by TransportServer.Serve after Close; use
// it to tell an orderly shutdown from a transport failure.
var ErrServerClosed = transport.ErrServerClosed

// NewAuthority creates the trusted third party, valid from now for the
// given duration.
func NewAuthority(now time.Time, validity time.Duration) (*Authority, error) {
	return pki.NewAuthority(now, validity)
}

// NewChannel creates a DSRC broadcast channel.
func NewChannel(cfg ChannelConfig) (*Channel, error) {
	return dsrc.NewChannel(cfg)
}

// NewRSU wires an RSU (credential from Authority.IssueRSU) to its radio
// channel under load factor f; clock may be nil for time.Now.
func NewRSU(cred *Credential, ch *Channel, f float64, clock func() time.Time) (*RSU, error) {
	return rsu.New(cred, ch, f, clock)
}

// NewVehicle creates an on-board unit from its private identity and the
// authority's trust anchor. One-time MAC addresses come from crypto/rand;
// simulations needing reproducible addresses can use
// vehicle.NewWithMACSource directly.
func NewVehicle(id *VehicleIdentity, a *Authority, clock func() time.Time) (*Vehicle, error) {
	return vehicle.New(id, a.TrustAnchor(), clock)
}

// NewCentralServer creates an empty record store configured with the
// system-wide representative-bit count s and the default shard count.
func NewCentralServer(s int) (*CentralServer, error) {
	return central.NewServer(s)
}

// NewCentralServerSharded creates an empty record store with an explicit
// lock-shard count (a power of two); larger deployments admit more
// concurrent uploads with more shards.
func NewCentralServerSharded(s, shards int) (*CentralServer, error) {
	return central.NewServerSharded(s, shards)
}

// OpenDurableCentralServer opens a WAL-backed record store rooted at
// dir, recovering any previous contents (newest checkpoint plus newer
// log segments). checkpointEvery > 0 compacts the log automatically
// after that many ingested records; 0 compacts only on explicit
// Checkpoint calls.
func OpenDurableCentralServer(dir string, s, shards int, opts WALOptions, checkpointEvery int) (*DurableCentralServer, error) {
	return central.OpenDurable(dir, s, shards, opts, checkpointEvery)
}

// NewTransportServer exposes a record store (in-memory or durable) over
// the wire protocol; logger may be nil.
func NewTransportServer(store CentralStore, logger *log.Logger) (*TransportServer, error) {
	return transport.NewServer(store, logger)
}

// Dial connects to a central server's TCP endpoint.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return transport.Dial(addr, timeout)
}

// NewClient wraps an established connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return transport.NewClient(conn)
}

// DialTLS connects to a central server over TLS 1.3. Obtain cfg from
// Authority.ClientTLSConfig and the server certificate from
// Authority.IssueTLSServer + ServerTLSConfig.
func DialTLS(addr string, cfg *tls.Config, timeout time.Duration) (*Client, error) {
	return transport.DialTLS(addr, cfg, timeout)
}

// ServerTLSConfig wraps an authority-issued TLS certificate into a config
// for tls.NewListener.
func ServerTLSConfig(cert tls.Certificate) *tls.Config {
	return pki.ServerTLSConfig(cert)
}

// RSU scheduling (time-driven period rotation and record upload).
type (
	// RSUController runs an RSU on a wall-clock schedule.
	RSUController = rsu.Controller
	// RSUSchedule configures period length, beacon cadence and upload
	// retry policy.
	RSUSchedule = rsu.Schedule
)

// NewRSUController assembles a schedule-driven RSU runtime. upload
// typically wraps Client.Upload; expected returns the Eq. (2) historical
// volume expectation per period; clock nil selects the real clock.
func NewRSUController(r *RSU, sched RSUSchedule, upload func(*Record) error, expected func(PeriodID) float64, clock rsu.TickClock) (*RSUController, error) {
	return rsu.NewController(r, sched, upload, expected, clock)
}

// Sioux Falls evaluation data (Section VI-A).
type (
	// TripTable is an origin–destination trip table.
	TripTable = trips.Table
	// Zone is a traffic zone of the Sioux Falls network.
	Zone = trips.Zone
)

// SiouxFalls returns the 24-zone Sioux Falls trip table calibrated to the
// aggregates the paper publishes in Table I.
func SiouxFalls() *TripTable {
	return trips.NewSiouxFalls()
}

// SiouxFallsLPrime is the maximum-volume zone the paper uses as L'.
const SiouxFallsLPrime = trips.LPrime

// NewTripTable creates an empty origin–destination table with n zones;
// fill it with SetOD or load one with LoadTripTableCSV.
func NewTripTable(n int) (*TripTable, error) {
	return trips.NewEmpty(n)
}

// LoadTripTableCSV parses a "from,to,volume" CSV into a trip table, so
// deployments can run the estimators against their own network data.
func LoadTripTableCSV(r io.Reader) (*TripTable, error) {
	return trips.LoadCSV(r)
}
