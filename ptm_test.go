package ptm

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"
)

// makeRecords builds t records at loc with nCommon persistent vehicles and
// nTransient fresh vehicles per period, using only the public API.
func makeRecords(t *testing.T, loc LocationID, periods, nCommon, nTransient int, seed uint64) []*Record {
	t.Helper()
	common := make([]*VehicleIdentity, nCommon)
	next := VehicleID(0)
	for i := range common {
		v, err := NewSeededVehicleIdentity(next, DefaultS, seed)
		if err != nil {
			t.Fatal(err)
		}
		next++
		common[i] = v
	}
	recs := make([]*Record, periods)
	for p := 1; p <= periods; p++ {
		b, err := NewRecordBuilder(loc, PeriodID(p), float64(nCommon+nTransient), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range common {
			b.Observe(v)
		}
		for i := 0; i < nTransient; i++ {
			v, err := NewSeededVehicleIdentity(next, DefaultS, seed)
			if err != nil {
				t.Fatal(err)
			}
			next = next + 1 + VehicleID(p)*1000000
			b.Observe(v)
		}
		recs[p-1] = b.Finish()
	}
	return recs
}

func TestQuickstartFlow(t *testing.T) {
	recs := makeRecords(t, 1, 5, 400, 3000, 42)
	est, err := EstimatePoint(recs)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(est.Estimate-400) / 400; re > 0.2 {
		t.Errorf("estimate %v vs 400: rel err %.3f", est.Estimate, re)
	}
	vol, err := EstimateVolume(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(vol-3400) / 3400; re > 0.1 {
		t.Errorf("volume %v vs 3400", vol)
	}
	base, err := EstimatePointBaseline(recs)
	if err != nil {
		t.Fatal(err)
	}
	if base <= est.Estimate {
		t.Errorf("baseline %v should overestimate vs %v", base, est.Estimate)
	}
}

func TestEstimatePointErrors(t *testing.T) {
	if _, err := EstimatePoint(nil); err == nil {
		t.Error("nil records accepted")
	}
	one := makeRecords(t, 1, 1, 10, 100, 1)
	if _, err := EstimatePoint(one); !errors.Is(err, ErrTooFewPeriods) {
		t.Errorf("t=1 err = %v", err)
	}
}

func TestRecordSize(t *testing.T) {
	m, err := RecordSize(1000, 2)
	if err != nil || m != 2048 {
		t.Errorf("RecordSize = %d, %v", m, err)
	}
	if _, err := RecordSize(0, 2); err == nil {
		t.Error("zero volume accepted")
	}
}

func TestPointToPointFlow(t *testing.T) {
	const nCommon = 500
	common := make([]*VehicleIdentity, nCommon)
	for i := range common {
		v, err := NewSeededVehicleIdentity(VehicleID(i), DefaultS, 7)
		if err != nil {
			t.Fatal(err)
		}
		common[i] = v
	}
	build := func(loc LocationID, transientBase VehicleID, vol int) []*Record {
		recs := make([]*Record, 5)
		for p := 1; p <= 5; p++ {
			b, err := NewRecordBuilder(loc, PeriodID(p), float64(vol), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range common {
				b.Observe(v)
			}
			for i := 0; i < vol-nCommon; i++ {
				v, err := NewSeededVehicleIdentity(transientBase+VehicleID(p*1000000+i), DefaultS, 7)
				if err != nil {
					t.Fatal(err)
				}
				b.Observe(v)
			}
			recs[p-1] = b.Finish()
		}
		return recs
	}
	recsA := build(10, 1<<24, 4000)
	recsB := build(11, 1<<25, 9000)
	est, err := EstimatePointToPoint(recsA, recsB, DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(est.Estimate-nCommon) / nCommon; re > 0.2 {
		t.Errorf("p2p estimate %v vs %d: rel err %.3f", est.Estimate, nCommon, re)
	}
}

func TestConfidenceAPI(t *testing.T) {
	recs := makeRecords(t, 2, 5, 600, 4000, 9)
	est, err := EstimatePoint(recs)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := PointConfidence(est, 0.95, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > 600 || iv.Hi < 600 {
		t.Errorf("interval [%v, %v] excludes truth 600", iv.Lo, iv.Hi)
	}
}

func TestPrivacyAPI(t *testing.T) {
	p, err := EvaluatePrivacy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Ratio-1.9462) > 1e-3 || math.Abs(p.Noise-0.3935) > 1e-3 {
		t.Errorf("profile = %+v", p)
	}
	grid, err := PrivacySweep([]float64{1, 2}, []int{2, 3})
	if err != nil || len(grid) != 4 {
		t.Errorf("sweep = %d profiles, %v", len(grid), err)
	}
	noise, err := TrackingNoise(451000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := NoiseToInformationRatio(451000, 1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if noise <= 0 || ratio <= 0 {
		t.Errorf("noise=%v ratio=%v", noise, ratio)
	}
}

func TestSiouxFallsAPI(t *testing.T) {
	tab := SiouxFalls()
	z, v := tab.MaxVolumeZone()
	if z != SiouxFallsLPrime || math.Abs(v-451000) > 1 {
		t.Errorf("max zone %d vol %v", z, v)
	}
}

// TestDeploymentAPI drives the whole system through the public façade:
// authority -> RSU -> vehicles over a lossy channel -> records -> TCP
// upload -> central queries.
func TestDeploymentAPI(t *testing.T) {
	now := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	authority, err := NewAuthority(now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := authority.IssueRSU(3, now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewRSU(cred, ch, DefaultF, clock)
	if err != nil {
		t.Fatal(err)
	}

	store, err := NewCentralServer(DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewTransportServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	serverConn, clientConn := net.Pipe()
	go srv.ServeConn(serverConn)
	client := NewClient(clientConn)
	defer client.Close()

	const fleetSize = 200
	fleet := make([]*Vehicle, fleetSize)
	for i := range fleet {
		id, err := NewSeededVehicleIdentity(VehicleID(i), DefaultS, 99)
		if err != nil {
			t.Fatal(err)
		}
		fleet[i], err = NewVehicle(id, authority, clock)
		if err != nil {
			t.Fatal(err)
		}
	}
	for p := PeriodID(1); p <= 3; p++ {
		if err := unit.StartPeriod(p, fleetSize); err != nil {
			t.Fatal(err)
		}
		var leaves []func()
		for _, v := range fleet {
			leave, err := v.PassThrough(ch)
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leave)
		}
		if err := unit.Beacon(); err != nil {
			t.Fatal(err)
		}
		for _, leave := range leaves {
			leave()
		}
		rec, err := unit.EndPeriod()
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Upload(rec); err != nil {
			t.Fatal(err)
		}
	}
	// The whole fleet is persistent: the estimate should be ~fleetSize.
	got, err := client.QueryPointPersistent(3, []PeriodID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-fleetSize) / fleetSize; re > 0.25 {
		t.Errorf("persistent estimate %v vs %d", got, fleetSize)
	}
}
